// Package tracer provides the ptrace-session plumbing shared by every
// interception layer (DetTrace in internal/core, record-and-replay in
// internal/rr): stop-cost accounting, tracee memory access counting, and
// /proc-based fd introspection.
//
// The cost constants model what a real ptrace round trip spends: two
// context switches per stop, handler work in the tracer, and per-operation
// costs for PTRACE_PEEKDATA-style memory access. They are calibrated so the
// DetTrace policy reproduces the paper's measured relationship between
// system call rate and slowdown (Fig. 5; the paper's aggregate 3.49× at
// ~840k syscalls per ~100 s build implies roughly 0.3 ms of tracer service
// per intercepted call).
package tracer

import (
	"repro/internal/abi"
	"repro/internal/obs"
)

// Costs holds the virtual-time constants of one tracer implementation, in
// nanoseconds.
type Costs struct {
	// Stop is one ptrace stop as the *tracee* experiences it: two context
	// switches, TLB/cache pollution, the stall until resume. It is
	// tracee-side (parallel across processes); the Handler* costs below are
	// tracer-side (serialized).
	Stop int64
	// HandlerLight/Medium/Heavy are per-call tracer service times by
	// handler complexity class (see ClassOf).
	HandlerLight  int64
	HandlerMedium int64
	HandlerHeavy  int64
	// MemOp is one read or write of tracee memory.
	MemOp int64
	// ProcRead is one /proc/<pid>/... lookup (fd→inode resolution, §5.5).
	ProcRead int64
	// BufferRecord is one syscall recorded in the tracee-side syscall
	// buffer (the rr-style fast path): the wrapper's in-process bookkeeping
	// only — no stop, no tracer entry.
	BufferRecord int64
	// FlushPerEntry is the tracer-side cost of draining one buffered record
	// at a flush: validating and appending it to the event log. The flush's
	// stop itself is charged separately (FlushCost) or carried by a stop
	// already being paid for (DrainCost).
	FlushPerEntry int64
}

// DefaultCosts returns the calibrated constants.
func DefaultCosts() Costs {
	return Costs{
		Stop:          120_000,
		HandlerLight:  60_000,
		HandlerMedium: 200_000,
		HandlerHeavy:  500_000,
		MemOp:         5_000,
		ProcRead:      30_000,
		BufferRecord:  2_000,
		FlushPerEntry: 3_000,
	}
}

// Class buckets syscalls by how much tracer work their handler does.
type Class int

// Handler complexity classes.
const (
	ClassLight Class = iota
	ClassMedium
	ClassHeavy
)

// ClassOf reports the handler class for a syscall under DetTrace-style
// interception. Stat-family and open calls are heavy (path reads, /proc
// lookups, struct rewrites); time/randomness emulation is medium; data
// movement is light.
func ClassOf(nr abi.Sysno) Class {
	switch nr {
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat, abi.SysStat, abi.SysLstat,
		abi.SysFstat, abi.SysGetdents, abi.SysExecve, abi.SysUtimes,
		abi.SysUtimensat, abi.SysFork, abi.SysClone, abi.SysWait4:
		return ClassHeavy
	case abi.SysTime, abi.SysGettimeofday, abi.SysClockGettime,
		abi.SysGetrandom, abi.SysUname, abi.SysSysinfo, abi.SysAlarm,
		abi.SysSetitimer, abi.SysNanosleep, abi.SysGetpid, abi.SysGetppid,
		abi.SysGetTid, abi.SysKill:
		return ClassMedium
	default:
		return ClassLight
	}
}

// Counters is a plain snapshot of one session's accounting, with the same
// field names the session itself used to expose so downstream readers
// (benchtab's JSON schema, the equivalence tests) are unchanged.
type Counters struct {
	MemReads  int64
	MemWrites int64
	ProcReads int64
	Stops     int64
	// BufferedCalls counts syscalls serviced through the tracee-side
	// buffer (no stop); Flushes counts the batched drains that carried
	// them to the tracer.
	BufferedCalls int64
	Flushes       int64
}

// Session tracks one attached tracer's accounting. The counters live on an
// obs.Registry (under tracer_* names) so a farm can roll sessions up with
// Registry.Absorb; Counters() snapshots them for result structs. The session
// runs under the kernel's lockstep — single writer — so Counter.Inc's
// stripe-0 path is the right one.
type Session struct {
	Costs Costs

	// SingleStop is the kernel >= 4.8 optimization: seccomp delivers one
	// combined event instead of separate pre-syscall and seccomp stops
	// (§5.11).
	SingleStop bool

	memReads  *obs.Counter
	memWrites *obs.Counter
	procReads *obs.Counter
	stops     *obs.Counter
	buffered  *obs.Counter
	flushes   *obs.Counter
}

// NewSession returns a session with default costs and a private metrics
// registry. Callers that want the counters on a shared registry use
// NewSessionOn.
func NewSession(singleStop bool) *Session {
	return NewSessionOn(obs.NewRegistry(), singleStop)
}

// NewSessionOn returns a session whose counters live in reg.
func NewSessionOn(reg *obs.Registry, singleStop bool) *Session {
	return &Session{
		Costs:      DefaultCosts(),
		SingleStop: singleStop,
		memReads:   reg.Counter("tracer_mem_reads"),
		memWrites:  reg.Counter("tracer_mem_writes"),
		procReads:  reg.Counter("tracer_proc_reads"),
		stops:      reg.Counter("tracer_stops"),
		buffered:   reg.Counter("tracer_buffered_calls"),
		flushes:    reg.Counter("tracer_flushes"),
	}
}

// Counters snapshots the session's accounting.
func (s *Session) Counters() Counters {
	return Counters{
		MemReads:      s.memReads.Value(),
		MemWrites:     s.memWrites.Value(),
		ProcReads:     s.procReads.Value(),
		Stops:         s.stops.Value(),
		BufferedCalls: s.buffered.Value(),
		Flushes:       s.flushes.Value(),
	}
}

// InterceptCost returns the stop overhead for one intercepted syscall event
// of the given weight: either the combined event or the classic entry+exit
// pair, scaled because an event of weight w stands for w real stops.
func (s *Session) InterceptCost(weight int64) int64 {
	stops := int64(2)
	if s.SingleStop {
		stops = 1
	}
	s.stops.Inc(stops * weight)
	return stops * s.Costs.Stop * weight
}

// HandlerCost returns the service cost for nr's handler class at the given
// event weight.
func (s *Session) HandlerCost(nr abi.Sysno, weight int64) int64 {
	var c int64
	switch ClassOf(nr) {
	case ClassHeavy:
		c = s.Costs.HandlerHeavy
	case ClassMedium:
		c = s.Costs.HandlerMedium
	default:
		c = s.Costs.HandlerLight
	}
	return c * weight
}

// ReadMem records n reads of tracee memory and returns their cost.
func (s *Session) ReadMem(weight int64, n int64) int64 {
	s.memReads.Inc(n * weight)
	return n * s.Costs.MemOp * weight
}

// WriteMem records n writes of tracee memory and returns their cost.
func (s *Session) WriteMem(weight int64, n int64) int64 {
	s.memWrites.Inc(n * weight)
	return n * s.Costs.MemOp * weight
}

// ReadProc records one /proc lookup and returns its cost.
func (s *Session) ReadProc(weight int64) int64 {
	s.procReads.Inc(weight)
	return s.Costs.ProcRead * weight
}

// RecordBuffered accounts one syscall serviced through the tracee-side
// buffer: no stop, just the wrapper's local bookkeeping.
func (s *Session) RecordBuffered(weight int64) int64 {
	s.buffered.Inc(weight)
	return s.Costs.BufferRecord * weight
}

// FlushCost accounts a dedicated flush of n buffered records: one combined
// stop amortized over the batch.
func (s *Session) FlushCost(n, weight int64) int64 {
	s.flushes.Inc(weight)
	s.stops.Inc(weight)
	return (s.Costs.Stop + n*s.Costs.FlushPerEntry) * weight
}

// DrainCost accounts draining n buffered records on a stop that is already
// being paid for — a traced call's own stop doubles as the flush point, so
// only the per-entry work is new.
func (s *Session) DrainCost(n, weight int64) int64 {
	if n == 0 {
		return 0
	}
	s.flushes.Inc(weight)
	return n * s.Costs.FlushPerEntry * weight
}
