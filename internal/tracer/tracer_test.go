package tracer

import (
	"testing"
	"testing/quick"

	"repro/internal/abi"
)

func TestInterceptCostStops(t *testing.T) {
	single := NewSession(true)
	double := NewSession(false)
	cs, cd := single.InterceptCost(1), double.InterceptCost(1)
	if cd != 2*cs {
		t.Errorf("two-stop fallback should cost twice the combined event: %d vs %d", cd, cs)
	}
	if single.Counters().Stops != 1 || double.Counters().Stops != 2 {
		t.Errorf("stop counters: %d, %d", single.Counters().Stops, double.Counters().Stops)
	}
}

func TestHandlerClasses(t *testing.T) {
	cases := map[abi.Sysno]Class{
		abi.SysOpen:     ClassHeavy,
		abi.SysStat:     ClassHeavy,
		abi.SysGetdents: ClassHeavy,
		abi.SysExecve:   ClassHeavy,
		abi.SysTime:     ClassMedium,
		abi.SysGetpid:   ClassMedium,
		abi.SysRead:     ClassLight,
		abi.SysWrite:    ClassLight,
		abi.SysFutex:    ClassLight,
	}
	for nr, want := range cases {
		if got := ClassOf(nr); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", nr, got, want)
		}
	}
	s := NewSession(true)
	if !(s.HandlerCost(abi.SysOpen, 1) > s.HandlerCost(abi.SysTime, 1) &&
		s.HandlerCost(abi.SysTime, 1) > s.HandlerCost(abi.SysRead, 1)) {
		t.Errorf("handler cost ordering violated")
	}
}

// Property: every cost scales linearly in the event weight, because an event
// of weight w stands for w real events.
func TestCostsScaleWithWeightProperty(t *testing.T) {
	prop := func(wRaw uint16) bool {
		w := int64(wRaw)%5000 + 1
		a, b := NewSession(true), NewSession(true)
		if a.InterceptCost(w) != b.InterceptCost(1)*w {
			return false
		}
		if a.HandlerCost(abi.SysOpen, w) != b.HandlerCost(abi.SysOpen, 1)*w {
			return false
		}
		if a.ReadMem(w, 3) != b.ReadMem(1, 3)*w {
			return false
		}
		if a.ReadProc(w) != b.ReadProc(1)*w {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemCounters(t *testing.T) {
	s := NewSession(true)
	s.ReadMem(10, 3)
	s.WriteMem(2, 5)
	s.ReadProc(7)
	c := s.Counters()
	if c.MemReads != 30 || c.MemWrites != 10 || c.ProcReads != 7 {
		t.Errorf("counters: reads=%d writes=%d proc=%d", c.MemReads, c.MemWrites, c.ProcReads)
	}
}
