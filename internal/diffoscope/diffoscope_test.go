package diffoscope

import (
	"strings"
	"testing"

	"repro/internal/artar"
	"repro/internal/fs"
)

func img(pairs ...string) *fs.Image {
	im := fs.NewImage()
	for i := 0; i+1 < len(pairs); i += 2 {
		im.AddFile(pairs[i], 0o644, []byte(pairs[i+1]))
	}
	return im
}

func TestIdenticalImagesNoDiff(t *testing.T) {
	a := img("/f", "same", "/g", "also")
	b := img("/f", "same", "/g", "also")
	if d := Compare(a, b); len(d) != 0 {
		t.Errorf("diffs = %v", d)
	}
}

func TestContentDifferenceLocalized(t *testing.T) {
	a := img("/f", "aaaa")
	b := img("/f", "aaXa")
	d := Compare(a, b)
	if len(d) != 1 || d[0].Kind != Content {
		t.Fatalf("diffs = %v", d)
	}
	if !strings.Contains(d[0].Detail, "byte 2") {
		t.Errorf("difference not localized: %s", d[0].Detail)
	}
}

func TestMissingFiles(t *testing.T) {
	a := img("/only-a", "x")
	b := img("/only-b", "y")
	d := Compare(a, b)
	if len(d) != 2 {
		t.Fatalf("diffs = %v", d)
	}
	for _, diff := range d {
		if diff.Kind != Missing {
			t.Errorf("kind = %s", diff.Kind)
		}
	}
}

func TestModeDifference(t *testing.T) {
	a := fs.NewImage()
	a.AddFile("/f", 0o644, []byte("x"))
	b := fs.NewImage()
	b.AddFile("/f", 0o755, []byte("x"))
	d := Compare(a, b)
	if len(d) != 1 || d[0].Kind != Mode {
		t.Errorf("diffs = %v", d)
	}
}

func TestSymlinkTargetDifference(t *testing.T) {
	a := fs.NewImage()
	a.AddSymlink("/ln", "/x")
	b := fs.NewImage()
	b.AddSymlink("/ln", "/y")
	d := Compare(a, b)
	if len(d) != 1 || d[0].Kind != Content {
		t.Errorf("diffs = %v", d)
	}
}

// The headline feature: a difference buried inside a nested archive is
// reported against the inner member, not just "files differ".
func TestArchiveRecursion(t *testing.T) {
	mkdeb := func(mtime int64, payload string) []byte {
		data := &artar.Archive{}
		data.Add(artar.Member{Name: "usr/bin/prog", Mtime: mtime, Data: []byte(payload)})
		deb := &artar.Archive{}
		deb.Add(artar.Member{Name: "debian-binary", Data: []byte("2.0\n")})
		deb.Add(artar.Member{Name: "data.tar", Data: data.Pack()})
		return deb.Pack()
	}
	a := img()
	a.AddFile("/p.deb", 0o644, mkdeb(0, "same"))
	b := img()
	b.AddFile("/p.deb", 0o644, mkdeb(0, "diff"))
	d := Compare(a, b)
	if len(d) == 0 {
		t.Fatal("no diffs found")
	}
	found := false
	for _, diff := range d {
		if strings.Contains(diff.Path, "data.tar//usr/bin/prog") {
			found = true
		}
	}
	if !found {
		t.Errorf("difference not localized into the nested member: %v", d)
	}

	// Timestamp-only difference shows up as metadata on the member.
	c := img()
	c.AddFile("/p.deb", 0o644, mkdeb(999, "same"))
	d = Compare(a, c)
	if len(d) != 1 || d[0].Kind != Metadata || !strings.Contains(d[0].Detail, "mtime") {
		t.Errorf("timestamp diff = %v", d)
	}
}

func TestCompareSubtree(t *testing.T) {
	a := img("/build/out/x.deb", "1", "/tmp/scratch", "a")
	b := img("/build/out/x.deb", "2", "/tmp/scratch", "b")
	d := CompareSubtree(a, b, "/build/out")
	if len(d) != 1 || d[0].Path != "/build/out/x.deb" {
		t.Errorf("subtree diff = %v", d)
	}
}
