// Package diffoscope performs the bitwise artifact comparison the Debian
// Reproducible Builds project uses to adjudicate reproducibility (§6.1):
// two build outputs are reproducible iff diffoscope finds no differences.
// Like the real tool it recurses into archives so a difference can be
// localised to the embedded member that caused it.
package diffoscope

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/abi"
	"repro/internal/artar"
	"repro/internal/fs"
)

// Kind classifies one difference.
type Kind string

// Difference kinds.
const (
	Missing  Kind = "only-in-one"
	Content  Kind = "content"
	Mode     Kind = "mode"
	Metadata Kind = "metadata"
)

// Difference is one divergence between two trees.
type Difference struct {
	Path   string
	Kind   Kind
	Detail string
}

func (d Difference) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Path, d.Kind, d.Detail)
}

// Compare diffs two filesystem images. Regular-file contents, symlink
// targets and permission bits participate; inode numbers and directory
// metadata do not (they are not part of the artifact).
func Compare(a, b *fs.Image) []Difference {
	var diffs []Difference
	paths := unionPaths(a, b)
	for _, p := range paths {
		ea, inA := a.Entries[p]
		eb, inB := b.Entries[p]
		switch {
		case !inA:
			diffs = append(diffs, Difference{p, Missing, "only in second"})
		case !inB:
			diffs = append(diffs, Difference{p, Missing, "only in first"})
		default:
			diffs = append(diffs, compareEntry(p, ea, eb)...)
		}
	}
	return diffs
}

// CompareSubtree restricts the diff to paths under prefix.
func CompareSubtree(a, b *fs.Image, prefix string) []Difference {
	var out []Difference
	for _, d := range Compare(a, b) {
		if len(d.Path) >= len(prefix) && d.Path[:len(prefix)] == prefix {
			out = append(out, d)
		}
	}
	return out
}

func compareEntry(p string, ea, eb fs.ImageEntry) []Difference {
	var diffs []Difference
	if ea.Mode != eb.Mode {
		diffs = append(diffs, Difference{p, Mode, fmt.Sprintf("%o vs %o", ea.Mode, eb.Mode)})
	}
	switch ea.Mode & abi.ModeTypeMask {
	case abi.ModeSymlink:
		if ea.Target != eb.Target {
			diffs = append(diffs, Difference{p, Content, fmt.Sprintf("target %q vs %q", ea.Target, eb.Target)})
		}
	case abi.ModeRegular:
		if !bytes.Equal(ea.Data, eb.Data) {
			diffs = append(diffs, diffContent(p, ea.Data, eb.Data)...)
		}
	}
	return diffs
}

// diffContent recurses into archives so the report names the member that
// differs, like diffoscope's nested unpacking.
func diffContent(p string, a, b []byte) []Difference {
	arA, errA := artar.Unpack(a)
	arB, errB := artar.Unpack(b)
	if errA != nil || errB != nil {
		return []Difference{{p, Content, firstByteDiff(a, b)}}
	}
	var diffs []Difference
	ma := memberMap(arA)
	mb := memberMap(arB)
	names := make(map[string]bool)
	for n := range ma {
		names[n] = true
	}
	for n := range mb {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		inner := p + "//" + n
		ea, inA := ma[n]
		eb, inB := mb[n]
		switch {
		case !inA:
			diffs = append(diffs, Difference{inner, Missing, "only in second"})
		case !inB:
			diffs = append(diffs, Difference{inner, Missing, "only in first"})
		default:
			if ea.Mtime != eb.Mtime {
				diffs = append(diffs, Difference{inner, Metadata, fmt.Sprintf("mtime %d vs %d", ea.Mtime, eb.Mtime)})
			}
			if ea.Mode != eb.Mode {
				diffs = append(diffs, Difference{inner, Mode, fmt.Sprintf("%o vs %o", ea.Mode, eb.Mode)})
			}
			if !bytes.Equal(ea.Data, eb.Data) {
				diffs = append(diffs, diffContent(inner, ea.Data, eb.Data)...)
			}
		}
	}
	if len(diffs) == 0 {
		// Archive headers differ in some other way (ordering, counts).
		diffs = append(diffs, Difference{p, Metadata, "archive framing differs"})
	}
	return diffs
}

func memberMap(ar *artar.Archive) map[string]artar.Member {
	m := make(map[string]artar.Member, len(ar.Members))
	for _, mem := range ar.Members {
		m[mem.Name] = mem
	}
	return m
}

func firstByteDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("first difference at byte %d (%#x vs %#x)", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

func unionPaths(a, b *fs.Image) []string {
	set := make(map[string]bool, len(a.Entries)+len(b.Entries))
	for p := range a.Entries {
		set[p] = true
	}
	for p := range b.Entries {
		set[p] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
