package ttd

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// This file is the auto-bisect half of the debugger: localize the first
// divergent event between two recorded runs in O(log n) seal probes and a
// constant number of window replays, instead of the linear diagnoser's two
// full traces.
//
// The trick is that checkpoint seals already carry the search index. Each
// seal's Digest() is the content digest of the flight-recorder prefix at the
// seal, and divergence is monotone over it: once the two runs' event streams
// disagree, every later prefix digest disagrees too (events are only ever
// appended). So "does the divergence lie before seal k?" is a pure digest
// comparison — no replay, no I/O — and binary search over the chain brackets
// the divergence between two adjacent seals in ceil(log2 n) probes. Only
// then does re-execution happen: each run replays just the bracketing
// window (resume the seal below, halt at its own seal above), and the
// linear diagnoser runs on those two window rings. Because a restored ring
// continues byte-for-byte and halted replay is exact, the window rings are
// prefixes of the original traces — the divergence found is THE first
// divergence, at the same comparable-stream index the full linear diagnose
// reports.

// BisectResult describes a localized divergence: the bracketing seal window,
// the probe/replay cost, and the divergence itself (with context windows
// from obs.FirstDivergence).
type BisectResult struct {
	// Divergence is the first divergent comparable event, nil if the two
	// runs' traces agree entirely.
	Divergence *obs.Divergence

	// LowOrdinal/HighOrdinal bracket the divergence: it lies after seal
	// LowOrdinal (0 = boot) and at or before seal HighOrdinal (0 = end of
	// run — the streams first disagree after the last common seal).
	LowOrdinal  int
	HighOrdinal int

	// Probes is how many seal-digest comparisons the binary search spent;
	// WindowReplays how many partial re-executions localization needed. The
	// O(log n) claim the CLI gate checks: WindowReplays must stay within
	// ceil(log2(seals))+1 even though Probes grows with log n too.
	Probes        int
	WindowReplays int
}

// Bisect localizes the first divergent event between this session's run and
// other's. The two sessions must be recordings of comparable runs — same
// command, configs differing in the behaviour under investigation (e.g. a
// FaultInjectEntropy injection) — with checkpointing on so both carry seal
// chains. Probe count and probe events land on s's session observability.
func (s *Session) Bisect(other *Session) (*BisectResult, error) {
	if len(s.Seals) == 0 || len(other.Seals) == 0 {
		return nil, errors.New("ttd: bisect needs both runs recorded with checkpoints")
	}
	n := len(s.Seals)
	if len(other.Seals) < n {
		n = len(other.Seals)
	}
	res := &BisectResult{}

	// Binary search the common chain for the first ordinal whose ring-prefix
	// digests disagree. Invariant: digests agree at ordinal lo (0 = boot,
	// where both rings are empty), disagree at ordinal hi when hi <= n.
	lo, hi := 0, n+1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		diverged := s.Seals[mid-1].Digest() != other.Seals[mid-1].Digest()
		res.Probes++
		s.count("ttd_bisect_probes", 1)
		s.record(obs.KindBisectProbe, 0, uint64(mid), int64(boolToInt(diverged)))
		if diverged {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.LowOrdinal = lo
	if hi <= n {
		res.HighOrdinal = hi
	}

	// Replay each run across the bracketing window only: resume its own
	// seal lo (stepping down on corruption), halt at its own seal hi's
	// action count — action counts may differ between the runs once
	// diverged, so each halts on its own chain's coordinate.
	ringA, err := s.windowRing(lo, hi, n, &res.WindowReplays)
	if err != nil {
		return nil, fmt.Errorf("ttd: bisect window replay (run A): %w", err)
	}
	ringB, err := other.windowRing(lo, hi, n, &res.WindowReplays)
	if err != nil {
		return nil, fmt.Errorf("ttd: bisect window replay (run B): %w", err)
	}
	res.Divergence = obs.FirstDivergence(ringA, ringB)
	return res, nil
}

// windowRing re-executes the [lo, hi] seal window of this session's run and
// returns the resulting event ring — a byte-exact prefix of the original
// trace ending at seal hi (or the run's end when hi > n: the divergence lies
// beyond the last common seal, so the window extends to completion).
func (s *Session) windowRing(lo, hi, n int, replays *int) ([]obs.Event, error) {
	cfg := s.replayConfig()
	if hi <= n {
		cfg.HaltAtAction = s.Seals[hi-1].Actions()
	}
	*replays++
	res, _, err := s.replayFrom(lo-1, cfg)
	if err != nil {
		return nil, err
	}
	return res.Events, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
