// Package ttd is the time-travel debug service (ISSUE 9): logical-time seek
// over a recorded run's checkpoint seal chain, plus O(log n) auto-bisect of
// the first divergent event between two runs (bisect.go).
//
// The foundation is the determinism contract the rest of the system already
// pins: a container run is a pure function of its inputs, a checkpoint
// restore is bitwise-identical to the uninterrupted run, and a halted replay
// observes a strict prefix of it. Time travel then needs no new mechanism at
// all — "go to logical instant T" is just "restore the nearest preceding
// seal and replay forward with HaltAtLTime=T", and because replay is exact,
// the state inspected at T is THE state the original run passed through, not
// an approximation. Delta checkpoint seals (internal/fs) make the seal chain
// dense enough for seeks to be cheap; the chain validator steps down past
// any corrupted link to the newest seal whose whole chain validates.
package ttd

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// Session is one debuggable recorded run: its checkpoint seal chain, its
// full flight-recorder trace, and everything needed to re-execute it
// (config, program registry, cold-launch closure). Sessions are built by the
// recording layer (internal/buildsim collects every seal via a slice
// CheckpointSink); the debugger itself never mutates them.
type Session struct {
	// Cfg is the recorded run's container config. Seeks derive their replay
	// config from it: sinks and fault knobs cleared, halt knob set. It must
	// be recoveryHash-identical to the config the seals were taken under.
	Cfg core.Config
	// Reg resolves the container's programs for re-execution.
	Reg *guest.Registry
	// Launch re-runs the container from boot under the given config — the
	// cold-replay fallback when no seal precedes the target instant (or
	// every candidate seal's chain is corrupt). The closure owns the
	// command/env of the recorded run.
	Launch func(core.Config) *core.Result
	// Seals is the run's checkpoint chain in ordinal order (1-based
	// ordinals, Seals[i].Ordinal() == i+1).
	Seals []*core.Checkpoint
	// Trace is the run's full recorded event stream (the linear diagnoser's
	// input; bisect validates against it).
	Trace []obs.Event

	// Obs and Rec are the debug session's own observability — ttd_* counters
	// and KindSeek/KindBisectProbe events land here, never on a guest run's
	// registry or ring (attaching a debugger must not perturb what per-run
	// metrics a run reports). Both may be nil.
	Obs *obs.Registry
	Rec *obs.Recorder
}

// View is the state of the recorded run at one logical instant — the
// inspection surface a debugger renders. Everything in it comes from a
// halted exact replay, so two Views of the same instant are identical no
// matter which seal the seek happened to restore from.
type View struct {
	LTime   int64 // logical clock at the halt (>= the requested instant)
	Actions int64 // kernel action count at the halt

	// SealOrdinal is the checkpoint the seek restored from (0 = cold replay
	// from boot); ReplayedActions how many kernel actions the replay
	// executed to reach the instant, and ReplayedNs the wall time that took
	// — the seek-latency numerator benchtab's ttd study reports.
	SealOrdinal     int
	ReplayedActions int64
	ReplayedNs      int64

	// Halted is false when the requested instant lies at or beyond the end
	// of the run: the View then shows final state.
	Halted bool

	// FS is the filesystem exactly as the run saw it at the instant.
	FS *fs.Image
	// Events is the flight-recorder prefix up to the instant.
	Events []obs.Event
	// EntropyDraws is the entropy-log cursor (numbered PRNG draws served so
	// far) and RandomLog the true-randomness log prefix, when enabled.
	EntropyDraws int
	RandomLog    []byte
	// Stats is the kernel counter snapshot at the instant, scheduler state
	// included (runnable/blocked tallies, context switches).
	Stats kernel.Stats
}

// SeekTo replays the run to logical instant ltime and returns the state
// there. It restores the newest seal at or before ltime (stepping down past
// seals whose chain fails validation, all the way to a cold replay if
// needed) and replays forward with HaltAtLTime — so cost is proportional to
// the distance from the preceding seal, not to ltime.
func (s *Session) SeekTo(ltime int64) (*View, error) {
	cfg := s.replayConfig()
	cfg.HaltAtLTime = ltime

	idx := len(s.Seals) - 1
	for idx >= 0 && s.Seals[idx].LNow() > ltime {
		idx--
	}
	start := time.Now()
	res, ordinal, err := s.replayFrom(idx, cfg)
	if err != nil {
		return nil, err
	}
	replayedNs := time.Since(start).Nanoseconds()

	var sealActions int64
	if ordinal > 0 {
		sealActions = s.Seals[ordinal-1].Actions()
	}
	replayed := res.Actions - sealActions
	s.count("ttd_seek_total", 1)
	s.count("ttd_seek_replay_actions", replayed)
	s.count("ttd_seek_replay_ns", replayedNs)
	from := int64(ordinal)
	if ordinal == 0 {
		from = -1 // cold replay
	}
	s.record(obs.KindSeek, clampInt32(replayed), uint64(ltime), from)

	return &View{
		LTime:           res.LTime,
		Actions:         res.Actions,
		SealOrdinal:     ordinal,
		ReplayedActions: replayed,
		ReplayedNs:      replayedNs,
		Halted:          res.Halted,
		FS:              res.FS,
		Events:          res.Events,
		EntropyDraws:    res.EntropyDraws,
		RandomLog:       res.RandomLog,
		Stats:           res.Stats,
	}, nil
}

// replayConfig derives the exact-replay config from the recorded run's: the
// fault knobs are cleared (a replay observes, it does not re-crash or
// re-corrupt), which recoveryHash permits; everything behaviour-relevant
// stays, so the replay IS the recorded run. Checkpoint markers are ring
// events, so when the recorded run sealed checkpoints the replay re-seals at
// the same stops — into a discard sink, never the recording's own — making a
// View's ring byte-for-byte the recorded run's prefix no matter which seal
// the seek restored from (or none).
func (s *Session) replayConfig() core.Config {
	cfg := s.Cfg
	cfg.CheckpointSink = nil
	if s.Cfg.CheckpointSink != nil {
		cfg.CheckpointSink = func(*core.Checkpoint) {}
	}
	cfg.FaultInjectCrash = 0
	cfg.FaultCorruptCheckpoint = 0
	cfg.HaltAtLTime = 0
	cfg.HaltAtAction = 0
	return cfg
}

// replayFrom resumes Seals[idx] under cfg, stepping down to older seals (and
// finally a cold Launch, ordinal 0) when a seal's chain fails validation —
// the corrupted-delta-link degradation path. Any error other than corruption
// is real and surfaces.
func (s *Session) replayFrom(idx int, cfg core.Config) (*core.Result, int, error) {
	for ; idx >= 0; idx-- {
		res, err := core.Resume(s.Seals[idx], s.Reg, cfg)
		switch {
		case err == nil:
			return res, s.Seals[idx].Ordinal(), nil
		case errors.Is(err, core.ErrCheckpointCorrupt):
			continue
		default:
			return nil, 0, err
		}
	}
	if s.Launch == nil {
		return nil, 0, errors.New("ttd: no valid seal and no cold-launch closure")
	}
	res := s.Launch(cfg)
	if res == nil {
		return nil, 0, errors.New("ttd: cold launch returned no result")
	}
	return res, 0, nil
}

// count bumps a session counter; nil-safe like the registry itself.
func (s *Session) count(name string, n int64) {
	if s.Obs != nil && n != 0 {
		s.Obs.Counter(name).Inc(n)
	}
}

// record appends a session event, stamped with the session's own event
// count as its logical time (the debug ring has no guest clock).
func (s *Session) record(kind obs.Kind, num int32, arg uint64, ret int64) {
	if s.Rec != nil {
		s.Rec.Record(s.Rec.Total(), kind, num, 0, arg, ret)
	}
}

func clampInt32(v int64) int32 {
	if v > 1<<31-1 {
		return 1<<31 - 1
	}
	return int32(v)
}
