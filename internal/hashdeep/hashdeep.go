// Package hashdeep computes recursive content hashes of filesystem trees,
// mirroring how §6.1 verifies reproducibility of the bioinformatics and ML
// outputs: run twice, hashdeep both result trees, compare.
package hashdeep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/fs"
)

// Entry is the hash record for one file.
type Entry struct {
	Path string
	Size int64
	SHA  string
}

// Report is a hashdeep run over one tree.
type Report struct {
	Entries []Entry
}

// Hash hashes every regular file and symlink in the image, in sorted path
// order. Directory metadata does not participate — hashdeep hashes content.
func Hash(im *fs.Image) *Report {
	r := &Report{}
	for _, p := range im.Paths() {
		e := im.Entries[p]
		switch e.Mode & abi.ModeTypeMask {
		case abi.ModeRegular:
			sum := sha256.Sum256(e.Data)
			r.Entries = append(r.Entries, Entry{Path: p, Size: int64(len(e.Data)), SHA: hex.EncodeToString(sum[:])})
		case abi.ModeSymlink:
			sum := sha256.Sum256([]byte("->" + e.Target))
			r.Entries = append(r.Entries, Entry{Path: p, SHA: hex.EncodeToString(sum[:])})
		}
	}
	return r
}

// HashSubtree hashes only paths under prefix.
func HashSubtree(im *fs.Image, prefix string) *Report {
	full := Hash(im)
	out := &Report{}
	for _, e := range full.Entries {
		if strings.HasPrefix(e.Path, prefix) {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// Total condenses the report into one digest.
func (r *Report) Total() string {
	h := sha256.New()
	for _, e := range r.Entries {
		fmt.Fprintf(h, "%s %d %s\n", e.Path, e.Size, e.SHA)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Equal reports whether two runs produced identical content, plus the paths
// that differ (present in either, with different hashes).
func Equal(a, b *Report) (bool, []string) {
	am := make(map[string]string, len(a.Entries))
	for _, e := range a.Entries {
		am[e.Path] = e.SHA
	}
	var diffs []string
	seen := make(map[string]bool)
	for _, e := range b.Entries {
		seen[e.Path] = true
		if am[e.Path] != e.SHA {
			diffs = append(diffs, e.Path)
		}
	}
	for _, e := range a.Entries {
		if !seen[e.Path] {
			diffs = append(diffs, e.Path)
		}
	}
	sort.Strings(diffs)
	return len(diffs) == 0, diffs
}
