package hashdeep

import (
	"testing"
	"testing/quick"

	"repro/internal/fs"
)

func TestHashEqualTrees(t *testing.T) {
	a := fs.NewImage()
	a.AddFile("/x", 0o644, []byte("content"))
	a.AddSymlink("/ln", "/x")
	b := a.Clone()
	eq, diffs := Equal(Hash(a), Hash(b))
	if !eq || len(diffs) != 0 {
		t.Errorf("equal trees reported different: %v", diffs)
	}
	if Hash(a).Total() != Hash(b).Total() {
		t.Errorf("totals differ for equal trees")
	}
}

func TestHashDetectsChanges(t *testing.T) {
	a := fs.NewImage()
	a.AddFile("/x", 0o644, []byte("v1"))
	b := fs.NewImage()
	b.AddFile("/x", 0o644, []byte("v2"))
	eq, diffs := Equal(Hash(a), Hash(b))
	if eq || len(diffs) != 1 || diffs[0] != "/x" {
		t.Errorf("eq=%v diffs=%v", eq, diffs)
	}
}

func TestHashDetectsMissing(t *testing.T) {
	a := fs.NewImage()
	a.AddFile("/x", 0o644, nil)
	a.AddFile("/y", 0o644, nil)
	b := fs.NewImage()
	b.AddFile("/x", 0o644, nil)
	eq, diffs := Equal(Hash(a), Hash(b))
	if eq || len(diffs) != 1 || diffs[0] != "/y" {
		t.Errorf("eq=%v diffs=%v", eq, diffs)
	}
}

func TestDirectoriesDoNotParticipate(t *testing.T) {
	a := fs.NewImage()
	a.AddDir("/d1", 0o755)
	b := fs.NewImage()
	b.AddDir("/d2", 0o700)
	if eq, _ := Equal(Hash(a), Hash(b)); !eq {
		t.Errorf("directory-only trees should hash equal (content hashing)")
	}
}

func TestHashSubtree(t *testing.T) {
	im := fs.NewImage()
	im.AddFile("/data/out/r1", 0o644, []byte("result"))
	im.AddFile("/tmp/noise", 0o644, []byte("scratch"))
	rep := HashSubtree(im, "/data/out")
	if len(rep.Entries) != 1 || rep.Entries[0].Path != "/data/out/r1" {
		t.Errorf("subtree = %+v", rep.Entries)
	}
}

// Property: the total hash is order-insensitive in input construction but
// sensitive to any content change.
func TestTotalSensitivityProperty(t *testing.T) {
	prop := func(blobs [][]byte, flip uint8) bool {
		if len(blobs) == 0 {
			return true
		}
		build := func(mutate bool) *fs.Image {
			im := fs.NewImage()
			for i, b := range blobs {
				data := append([]byte(nil), b...)
				if mutate && i == int(flip)%len(blobs) {
					data = append(data, 0x01)
				}
				im.AddFile("/f"+string(rune('a'+i%26))+string(rune('0'+i/26%10)), 0o644, data)
			}
			return im
		}
		same := Hash(build(false)).Total() == Hash(build(false)).Total()
		diff := Hash(build(false)).Total() != Hash(build(true)).Total()
		return same && diff
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
