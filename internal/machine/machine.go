// Package machine defines hardware/OS profiles for the simulated hosts the
// evaluation runs on. A Profile captures exactly the machine details the
// paper shows leaking into guest-visible state: cpuid contents, core counts,
// kernel version strings, TSX/rdrand availability, cpuid-faulting support
// (Ivy Bridge and newer, Linux >= 4.12), filesystem directory-size
// formulas, and TSC frequency.
//
// Portability (§7.3) is evaluated by running the same container image on two
// different Profiles and requiring bitwise-identical output.
package machine

import "fmt"

// Profile describes one host machine: microarchitecture plus OS build.
type Profile struct {
	Name      string
	Microarch string // "skylake", "haswell", "broadwell", "sandybridge"
	CPUModel  string // cpuid brand string

	Cores int // logical CPUs visible to the scheduler
	RAMMB int
	TSCHz uint64 // rdtsc increments per second

	KernelRelease string // uname -r, e.g. "4.15.0-45-generic"
	KernelVersion string // uname -v build banner (host-specific)
	Hostname      string

	// Capability bits that gate DetTrace mechanisms.
	HasCpuidFaulting  bool // Ivy Bridge+ hardware AND kernel >= 4.12
	HasTSX            bool
	HasRDRAND         bool
	SeccompSingleStop bool // kernel >= 4.8 combined ptrace/seccomp event

	// CacheKB is the L3 size reported through cpuid; it differs across
	// microarchitectures and is one of the portability leaks DetTrace masks.
	CacheKB int

	// DirSizeSlope/DirSizeBase parameterize how the host filesystem reports
	// st_size for directories: size = base + slope*ceil(entries/perBlock).
	// The paper found this to vary across machines even for identical
	// directory contents, which broke portability until DetTrace virtualized
	// directory sizes.
	DirSizeBase        int64
	DirSizeSlope       int64
	DirEntriesPerBlock int
}

// DirSize returns the st_size this machine's filesystem reports for a
// directory with n entries (excluding "." and "..").
func (p *Profile) DirSize(n int) int64 {
	blocks := int64(1)
	if p.DirEntriesPerBlock > 0 {
		blocks = int64((n + p.DirEntriesPerBlock - 1) / p.DirEntriesPerBlock)
		if blocks == 0 {
			blocks = 1
		}
	}
	return p.DirSizeBase + p.DirSizeSlope*blocks
}

// CPUIDLeaf is the raw result of one cpuid leaf as the hardware reports it.
type CPUIDLeaf struct {
	EAX, EBX, ECX, EDX uint32
}

// Feature bits within cpuid leaf 1 ECX and leaf 7 EBX that the paper's
// taxonomy cares about.
const (
	Leaf1ECXRdrand uint32 = 1 << 30
	Leaf7EBXTSX    uint32 = 1 << 11 // RTM
	Leaf7EBXRdseed uint32 = 1 << 18
)

// CPUID returns the hardware cpuid leaf for this profile. Leaf 0 reports the
// vendor, leaf 1 the family/model plus feature bits, leaf 4 the cache
// geometry, and leaf 0x16 the base frequency. Anything else returns zeros.
func (p *Profile) CPUID(leaf uint32) CPUIDLeaf {
	switch leaf {
	case 0:
		return CPUIDLeaf{EAX: 0x16, EBX: 0x756e6547, ECX: 0x6c65746e, EDX: 0x49656e69} // "GenuineIntel"
	case 1:
		var ecx uint32
		if p.HasRDRAND {
			ecx |= Leaf1ECXRdrand
		}
		return CPUIDLeaf{EAX: p.modelSignature(), EBX: uint32(p.Cores) << 16, ECX: ecx}
	case 4:
		return CPUIDLeaf{EAX: uint32(p.Cores-1) << 26, EBX: uint32(p.CacheKB)}
	case 7:
		var ebx uint32
		if p.HasTSX {
			ebx |= Leaf7EBXTSX
		}
		if p.HasRDRAND { // rdseed ships alongside rdrand on these parts
			ebx |= Leaf7EBXRdseed
		}
		return CPUIDLeaf{EBX: ebx}
	case 0x16:
		return CPUIDLeaf{EAX: uint32(p.TSCHz / 1e6)}
	default:
		return CPUIDLeaf{}
	}
}

func (p *Profile) modelSignature() uint32 {
	switch p.Microarch {
	case "skylake":
		return 0x00050654
	case "broadwell":
		return 0x000406f1
	case "haswell":
		return 0x000306f2
	case "ivybridge":
		return 0x000306a9
	case "sandybridge":
		return 0x000206a7
	default:
		return 0x000106a5
	}
}

// String identifies the profile for logs and experiment records.
func (p *Profile) String() string {
	return fmt.Sprintf("%s (%s, %d cores, linux %s)", p.Name, p.Microarch, p.Cores, p.KernelRelease)
}

// kernelAtLeast reports whether the release string begins with a version
// >= major.minor. Releases are well-formed in this package, so parsing is
// simple.
func kernelAtLeast(release string, major, minor int) bool {
	var a, b int
	fmt.Sscanf(release, "%d.%d", &a, &b)
	return a > major || (a == major && b >= minor)
}

// SupportsCpuidInterception reports whether DetTrace can hide cpuid on this
// host: Ivy Bridge or newer silicon and a kernel that exports the faulting
// control (>= 4.12).
func (p *Profile) SupportsCpuidInterception() bool {
	return p.HasCpuidFaulting && kernelAtLeast(p.KernelRelease, 4, 12)
}

// CloudLabC220G5 is the package-build machine from §6: two Xeon Silver 4114
// (Skylake) packages, Ubuntu 18.04, Linux 4.15.
func CloudLabC220G5() *Profile {
	return &Profile{
		Name: "cloudlab-c220g5", Microarch: "skylake",
		CPUModel: "Intel(R) Xeon(R) Silver 4114 CPU @ 2.20GHz",
		Cores:    40, RAMMB: 192 * 1024, TSCHz: 2_200_000_000,
		KernelRelease: "4.15.0-45-generic",
		KernelVersion: "#48-Ubuntu SMP", Hostname: "clnode241",
		HasCpuidFaulting: true, HasTSX: true, HasRDRAND: true,
		SeccompSingleStop: true, CacheKB: 14080,
		DirSizeBase: 0, DirSizeSlope: 4096, DirEntriesPerBlock: 85,
	}
}

// BioHaswell is the bioinformatics/ML machine from §6: two Xeon E5-2618Lv3
// (Haswell) packages, Ubuntu 18.10, Linux 4.18.
func BioHaswell() *Profile {
	return &Profile{
		Name: "bio-haswell", Microarch: "haswell",
		CPUModel: "Intel(R) Xeon(R) CPU E5-2618L v3 @ 2.30GHz",
		Cores:    32, RAMMB: 128 * 1024, TSCHz: 2_300_000_000,
		KernelRelease: "4.18.0-13-generic",
		KernelVersion: "#14-Ubuntu SMP", Hostname: "bioserver",
		HasCpuidFaulting: true, HasTSX: false, HasRDRAND: true,
		SeccompSingleStop: true, CacheKB: 20480,
		DirSizeBase: 0, DirSizeSlope: 4096, DirEntriesPerBlock: 85,
	}
}

// PortabilityBroadwell is the second machine of the §7.3 portability study:
// Xeon E5-2620 v4 (Broadwell), Ubuntu 18.10, Linux 4.18. Its filesystem
// reports different directory sizes than the c220g5's, which is the leak
// §7.3 discovered.
func PortabilityBroadwell() *Profile {
	return &Profile{
		Name: "portability-broadwell", Microarch: "broadwell",
		CPUModel: "Intel(R) Xeon(R) CPU E5-2620 v4 @ 2.10GHz",
		Cores:    32, RAMMB: 64 * 1024, TSCHz: 2_100_000_000,
		KernelRelease: "4.18.0-10-generic",
		KernelVersion: "#11-Ubuntu SMP", Hostname: "bwnode07",
		HasCpuidFaulting: true, HasTSX: true, HasRDRAND: true,
		SeccompSingleStop: true, CacheKB: 20480,
		DirSizeBase: 24, DirSizeSlope: 4096, DirEntriesPerBlock: 96,
	}
}

// LegacySandyBridge models the pre-Ivy-Bridge fallback discussed in §5.8:
// no cpuid faulting, but also no TSX or rdrand, so DetTrace still runs with
// a smaller portability equivalence class. Its old kernel also lacks the
// combined seccomp/ptrace stop (§5.11).
func LegacySandyBridge() *Profile {
	return &Profile{
		Name: "legacy-sandybridge", Microarch: "sandybridge",
		CPUModel: "Intel(R) Xeon(R) CPU E5-2670 0 @ 2.60GHz",
		Cores:    16, RAMMB: 32 * 1024, TSCHz: 2_600_000_000,
		KernelRelease: "4.4.0-142-generic",
		KernelVersion: "#168-Ubuntu SMP", Hostname: "oldnode",
		HasCpuidFaulting: false, HasTSX: false, HasRDRAND: false,
		SeccompSingleStop: false, CacheKB: 20480,
		DirSizeBase: 0, DirSizeSlope: 4096, DirEntriesPerBlock: 85,
	}
}
