package machine

import "testing"

func TestProfilesDiffer(t *testing.T) {
	a, b := CloudLabC220G5(), PortabilityBroadwell()
	if a.CPUID(1) == b.CPUID(1) {
		t.Errorf("cpuid leaf 1 identical across microarchitectures")
	}
	if a.KernelRelease == b.KernelRelease {
		t.Errorf("kernel releases identical")
	}
}

func TestDirSizeFormulaVariesAcrossMachines(t *testing.T) {
	a, b := CloudLabC220G5(), PortabilityBroadwell()
	diffs := 0
	for n := 0; n < 500; n += 25 {
		if a.DirSize(n) != b.DirSize(n) {
			diffs++
		}
	}
	if diffs == 0 {
		t.Errorf("directory size formulas coincide everywhere — the §7.3 leak is unmodelled")
	}
	// And is monotone non-decreasing in the entry count.
	prev := int64(0)
	for n := 0; n < 1000; n += 10 {
		s := a.DirSize(n)
		if s < prev {
			t.Fatalf("DirSize not monotone at %d entries", n)
		}
		prev = s
	}
}

func TestCPUIDFeatureBits(t *testing.T) {
	sky := CloudLabC220G5()
	if sky.CPUID(1).ECX&Leaf1ECXRdrand == 0 {
		t.Errorf("Skylake should advertise rdrand")
	}
	if sky.CPUID(7).EBX&Leaf7EBXTSX == 0 {
		t.Errorf("Skylake c220g5 should advertise TSX")
	}
	old := LegacySandyBridge()
	if old.CPUID(1).ECX&Leaf1ECXRdrand != 0 {
		t.Errorf("Sandy Bridge should not advertise rdrand")
	}
	if old.CPUID(7).EBX&Leaf7EBXTSX != 0 {
		t.Errorf("Sandy Bridge should not advertise TSX")
	}
	// Vendor string is GenuineIntel on every profile.
	for _, p := range []*Profile{sky, old, BioHaswell(), PortabilityBroadwell()} {
		l0 := p.CPUID(0)
		if l0.EBX != 0x756e6547 || l0.EDX != 0x49656e69 || l0.ECX != 0x6c65746e {
			t.Errorf("%s: bad vendor string", p.Name)
		}
	}
}

func TestCpuidInterceptionSupport(t *testing.T) {
	if !CloudLabC220G5().SupportsCpuidInterception() {
		t.Errorf("Skylake + 4.15 must support cpuid interception")
	}
	if LegacySandyBridge().SupportsCpuidInterception() {
		t.Errorf("Sandy Bridge must not (no hardware faulting)")
	}
	// Hardware support but an old kernel is not enough (§5.8: >= 4.12).
	p := *BioHaswell()
	p.KernelRelease = "4.4.0-generic"
	if p.SupportsCpuidInterception() {
		t.Errorf("kernel 4.4 must not support user-space cpuid faulting")
	}
	p.KernelRelease = "5.1.0"
	if !p.SupportsCpuidInterception() {
		t.Errorf("kernel 5.1 should support it")
	}
}

func TestSeccompSingleStopFlags(t *testing.T) {
	if !CloudLabC220G5().SeccompSingleStop {
		t.Errorf("4.15 kernel has the combined stop (>= 4.8)")
	}
	if LegacySandyBridge().SeccompSingleStop {
		t.Errorf("the legacy profile models the pre-4.8 fallback (§5.11)")
	}
}

func TestString(t *testing.T) {
	s := CloudLabC220G5().String()
	if s == "" {
		t.Errorf("empty description")
	}
}
