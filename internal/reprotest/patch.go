package reprotest

import "repro/internal/prng"

// PatchFor derives a deterministic patch schedule from a seed: `rounds`
// successive edits, each naming the (1-3) source-file indices to dirty out
// of `files` candidates. Like PlanFor it is a pure function of its
// arguments, so the same seed replays the same schedule on every host, every
// worker count and both sides of the incremental ablation — which is what
// lets the incremental-equivalence property test (ISSUE 8) compare whole
// schedules DeepEqual across Jobs x Nodes x incremental on/off.
func PatchFor(seed uint64, files, rounds int) [][]int {
	if files <= 0 || rounds <= 0 {
		return nil
	}
	rng := prng.NewHost(seed ^ 0x9A7C84)
	sched := make([][]int, rounds)
	for r := range sched {
		n := 1 + int(rng.Uint64()%3)
		if n > files {
			n = files
		}
		picked := make(map[int]bool, n)
		round := make([]int, 0, n)
		for len(round) < n {
			i := int(rng.Uint64() % uint64(files))
			if picked[i] {
				continue
			}
			picked[i] = true
			round = append(round, i)
		}
		sched[r] = round
	}
	return sched
}
