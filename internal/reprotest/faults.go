package reprotest

import "repro/internal/prng"

// FaultPlan is one job's deterministic fault schedule. Faults are scheduled
// on the container's logical clock — an action count, a checkpoint ordinal —
// never on host time, so a plan injects the same failure at the same logical
// instant on every machine and every retry of the run. A zero plan injects
// nothing.
type FaultPlan struct {
	// CrashAtAction kills the container at the N'th kernel action (0 = no
	// crash). Plans beyond the run's natural length simply let it complete:
	// short builds deterministically dodge crashes long builds take.
	CrashAtAction int64
	// CorruptCheckpoint flips a bit in the checkpoint sealed with this
	// ordinal (0 = none), so a later restore fails validation and recovery
	// must fall back to an earlier seal or a cold replay.
	CorruptCheckpoint int
	// FailRestore makes the first restore attempt after a crash fail, to
	// exercise the bounded-retry path.
	FailRestore bool
}

// Crashes reports whether the plan schedules a crash at all.
func (p FaultPlan) Crashes() bool { return p.CrashAtAction > 0 }

// crashHorizon bounds planned crash points. Simulated package builds run
// roughly 1.2k-4.5k kernel actions, so points drawn below 3000 hit most
// builds mid-flight while a fraction land beyond the end and complete.
const crashHorizon = 3000

// PlanFor derives the fault plan for one job from its seed — a pure
// function, like every schedule the farm derives, so the plan is independent
// of workers, retries and scheduling. About half of all jobs crash; of
// those, a quarter find their freshest checkpoint corrupted and a quarter
// lose their first restore attempt.
func PlanFor(seed uint64) FaultPlan {
	rng := prng.NewHost(seed ^ 0xFA017)
	var p FaultPlan
	if rng.Uint64()%2 == 0 {
		p.CrashAtAction = 1 + int64(rng.Uint64()%crashHorizon)
	}
	if rng.Uint64()%4 == 0 {
		// Builds seal a handful of checkpoints (boot plus one per phase
		// boundary); ordinals 2-4 target the mid-run seals.
		p.CorruptCheckpoint = 2 + int(rng.Uint64()%3)
	}
	if rng.Uint64()%4 == 0 {
		p.FailRestore = true
	}
	return p
}
