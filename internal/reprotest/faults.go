package reprotest

import "repro/internal/prng"

// FaultPlan is one job's deterministic fault schedule. Faults are scheduled
// on the container's logical clock — an action count, a checkpoint ordinal —
// never on host time, so a plan injects the same failure at the same logical
// instant on every machine and every retry of the run. A zero plan injects
// nothing.
type FaultPlan struct {
	// CrashAtAction kills the container at the N'th kernel action (0 = no
	// crash). Plans beyond the run's natural length simply let it complete:
	// short builds deterministically dodge crashes long builds take.
	CrashAtAction int64
	// CorruptCheckpoint flips a bit in the checkpoint sealed with this
	// ordinal (0 = none), so a later restore fails validation and recovery
	// must fall back to an earlier seal or a cold replay.
	CorruptCheckpoint int
	// FailRestore makes the first restore attempt after a crash fail, to
	// exercise the bounded-retry path.
	FailRestore bool

	// The remaining events are the farm-level fault plane (internal/farm):
	// node crashes and message loss/duplication, scheduled on the farm's
	// logical clocks — accepted-job ordinals per node, message ordinals per
	// link — never on host time or goroutine interleaving.

	// KillNode names the worker ordinal (1-based) the plan kills; 0 kills no
	// node. A farm with fewer workers than KillNode deterministically dodges
	// the crash, the same way short builds dodge CrashAtAction.
	KillNode int
	// KillAtJob is the 1-based ordinal, among jobs the doomed worker
	// accepts, of the assignment that dies mid-build (the build itself is
	// killed via CrashAtAction so the seal/recovery machinery engages).
	// Defaults to 1 when KillNode is set.
	KillAtJob int
	// LoseMsg drops the transmission with this per-link message ordinal on a
	// coordinator->worker assign link (0 = none); at-least-once delivery
	// retransmits it.
	LoseMsg int64
	// DupMsg delivers the transmission with this per-link message ordinal
	// twice (0 = none); the receiver's idempotency cache absorbs the copy.
	DupMsg int64

	// The remaining events are the Byzantine fault plane (internal/attest):
	// participants that follow the protocol but lie. Each field names a node
	// ordinal (1-based worker; 0 = honest everywhere). Like every other
	// fault these are scheduled on identity and logical ordinals, never on
	// time, so the same plan seats the same adversaries on every run.

	// LieOutput makes the named worker sign a wrong output hash in every
	// attestation it emits — the classic compromised-builder attack the
	// quorum must out-vote and name.
	LieOutput int
	// CorruptAttestation makes the named worker flip bits in its signature
	// after signing, so the attestation fails keyring verification and is
	// demoted to an errored vote.
	CorruptAttestation int
	// EquivocateEpoch makes the log server with this ordinal (1-based)
	// present a tampered fork of the chain to every other query — the
	// split-view attack a collective signature exists to catch.
	EquivocateEpoch int
	// WithholdCosign makes the named worker silently drop every attestation
	// and epoch co-signature request — an availability attack on quorum
	// formation.
	WithholdCosign int
}

// Crashes reports whether the plan schedules a crash at all.
func (p FaultPlan) Crashes() bool { return p.CrashAtAction > 0 }

// crashHorizon bounds planned crash points. Simulated package builds run
// roughly 1.2k-4.5k kernel actions, so points drawn below 3000 hit most
// builds mid-flight while a fraction land beyond the end and complete.
const crashHorizon = 3000

// PlanFor derives the fault plan for one job from its seed — a pure
// function, like every schedule the farm derives, so the plan is independent
// of workers, retries and scheduling. About half of all jobs crash; of
// those, a quarter find their freshest checkpoint corrupted and a quarter
// lose their first restore attempt.
func PlanFor(seed uint64) FaultPlan {
	rng := prng.NewHost(seed ^ 0xFA017)
	var p FaultPlan
	if rng.Uint64()%2 == 0 {
		p.CrashAtAction = 1 + int64(rng.Uint64()%crashHorizon)
	}
	if rng.Uint64()%4 == 0 {
		// Builds seal a handful of checkpoints (boot plus one per phase
		// boundary); ordinals 2-4 target the mid-run seals.
		p.CorruptCheckpoint = 2 + int(rng.Uint64()%3)
	}
	if rng.Uint64()%4 == 0 {
		p.FailRestore = true
	}
	return p
}

// FarmPlanFor derives a farm-level fault schedule from a seed for a farm of
// the given worker count — again a pure function, so the same seed fires the
// same faults on every run regardless of placement or host scheduling. About
// half of all seeds kill a worker early in its job stream; a quarter lose an
// assign transmission and a quarter duplicate one.
func FarmPlanFor(seed uint64, nodes int) FaultPlan {
	rng := prng.NewHost(seed ^ 0xFA9A17)
	var p FaultPlan
	if nodes > 0 && rng.Uint64()%2 == 0 {
		p.KillNode = 1 + int(rng.Uint64()%uint64(nodes))
		p.KillAtJob = 1 + int(rng.Uint64()%2)
		p.CrashAtAction = 1 + int64(rng.Uint64()%crashHorizon)
	}
	if rng.Uint64()%4 == 0 {
		p.LoseMsg = 1 + int64(rng.Uint64()%3)
	}
	if rng.Uint64()%4 == 0 {
		p.DupMsg = 1 + int64(rng.Uint64()%3)
	}
	return p
}

// Byzantine reports whether the plan seats any lying participant.
func (p FaultPlan) Byzantine() bool {
	return p.LieOutput > 0 || p.CorruptAttestation > 0 || p.EquivocateEpoch > 0 || p.WithholdCosign > 0
}

// ByzantinePlanFor derives the adversarial schedule for a farm of the given
// worker count — the Byzantine slice of the fault plane, layered onto the
// same plan struct so one schedule can combine crash, transport and lying
// faults. Half of all seeds seat a lying builder; a quarter each corrupt an
// attestation, equivocate a log server, or withhold co-signatures. Distinct
// worker ordinals are drawn without replacement so one seed can seat several
// simultaneous adversaries on different nodes.
func ByzantinePlanFor(seed uint64, nodes int) FaultPlan {
	rng := prng.NewHost(seed ^ 0xB12A47)
	var p FaultPlan
	if nodes <= 0 {
		return p
	}
	pick := func() int { return 1 + int(rng.Uint64()%uint64(nodes)) }
	if rng.Uint64()%2 == 0 {
		p.LieOutput = pick()
	}
	if rng.Uint64()%4 == 0 {
		p.CorruptAttestation = pick()
		if p.CorruptAttestation == p.LieOutput {
			p.CorruptAttestation = 1 + p.CorruptAttestation%nodes
		}
	}
	if rng.Uint64()%4 == 0 {
		p.EquivocateEpoch = 1 + int(rng.Uint64()%3)
	}
	if rng.Uint64()%4 == 0 {
		p.WithholdCosign = pick()
		if p.WithholdCosign == p.LieOutput {
			p.WithholdCosign = 1 + p.WithholdCosign%nodes
		}
	}
	return p
}
