// Package reprotest models the Debian Reproducible Builds reprotest tool as
// configured in §6.1: build a package twice while varying everything the
// paper lists — environment variables, build path, ASLR, number of CPUs,
// wall-clock time, user/group, home directory and locale-ish variables —
// then compare the artifacts bitwise. Per the paper's methodology the first
// build of every package uses one consistent variation and the second build
// another, so baseline and DetTrace face identical perturbations.
package reprotest

import "repro/internal/prng"

// Variation is one build's perturbed host condition set.
type Variation struct {
	// Env is the invoking environment (reprotest varies USER, HOME,
	// DEB_BUILD_OPTIONS, locale and timezone).
	Env []string
	// BuildRoot is where the source tree is unpacked (build path
	// variation).
	BuildRoot string
	// Epoch is the wall-clock second at boot (time variation).
	Epoch int64
	// NumCPU is the visible core count.
	NumCPU int
	// HostSeed selects the physical run: ASLR bases, inode numbering,
	// scheduling jitter.
	HostSeed uint64
}

// Pair returns the two consistent variations used for all first and all
// second builds respectively.
func Pair(seed uint64) (first, second Variation) {
	rng := prng.NewHost(seed ^ 0x9e77)
	first = Variation{
		Env: []string{
			"PATH=/bin",
			"USER=builder",
			"HOME=/root",
			"DEB_BUILD_OPTIONS=",
			"LANG=C",
			"TZ=UTC",
		},
		BuildRoot: "/build",
		Epoch:     1_367_107_200, // 2013-04-28, a Wheezy-era build day
		NumCPU:    20,
		HostSeed:  rng.Uint64(),
	}
	second = Variation{
		Env: []string{
			"PATH=/bin",
			"USER=user42",
			"HOME=/home/user42",
			"DEB_BUILD_OPTIONS=parallel=16",
			"LANG=fr_CH.UTF-8",
			"TZ=Europe/Zurich",
			"CAPTURE_ENVIRONMENT=1",
		},
		BuildRoot: "/build/second/nested",
		Epoch:     1_399_248_000, // just over a year later
		NumCPU:    16,
		HostSeed:  rng.Uint64(),
	}
	return first, second
}

// PortabilityHost derives a variation for re-running the *same* build on a
// different machine (§7.3): same nominal conditions, different physical run.
func PortabilityHost(v Variation, seed uint64) Variation {
	v.HostSeed = prng.NewHost(seed ^ 0x707).Uint64()
	return v
}

// Perturbed is the open-ended perturbation schedule: the r-th host-accident
// variation of a package, for studies that rebuild more than twice (the
// template amortization study rebuilds 16 times, like reprotest's standard
// variation run). Run 0 is Pair's first variation, so schedules embed the
// farm's own first build; every run shares the first build's nominal inputs
// (environment, build root) and varies only the physical host. Pure in
// (seed, r): schedules are independent of workers and scheduling, like
// everything the farm derives.
func Perturbed(seed uint64, r int) Variation {
	v, _ := Pair(seed ^ (uint64(r) * 0x9E3779B97F4A7C15))
	return v
}
