package reprotest

import (
	"strings"
	"testing"
)

func TestPairDeterministic(t *testing.T) {
	a1, a2 := Pair(5)
	b1, b2 := Pair(5)
	if a1.HostSeed != b1.HostSeed || a2.HostSeed != b2.HostSeed {
		t.Errorf("Pair not deterministic")
	}
}

func TestPairVariesEverythingThePaperLists(t *testing.T) {
	v1, v2 := Pair(1)
	if v1.BuildRoot == v2.BuildRoot {
		t.Errorf("build path not varied")
	}
	if v1.Epoch == v2.Epoch {
		t.Errorf("time not varied")
	}
	if v1.NumCPU == v2.NumCPU {
		t.Errorf("CPU count not varied")
	}
	if v1.HostSeed == v2.HostSeed {
		t.Errorf("host accidents not varied")
	}
	env1 := strings.Join(v1.Env, ";")
	env2 := strings.Join(v2.Env, ";")
	for _, key := range []string{"USER=", "HOME=", "DEB_BUILD_OPTIONS=", "LANG=", "TZ="} {
		e1 := valueOf(v1.Env, key)
		e2 := valueOf(v2.Env, key)
		if e1 == e2 {
			t.Errorf("%s not varied (%q in both)", key, e1)
		}
	}
	_ = env1
	_ = env2
}

func TestPathStaysExecutable(t *testing.T) {
	v1, v2 := Pair(1)
	if valueOf(v1.Env, "PATH=") != "/bin" || valueOf(v2.Env, "PATH=") != "/bin" {
		t.Errorf("PATH must stay sane or nothing builds")
	}
}

func TestPortabilityHostChangesOnlyTheSeed(t *testing.T) {
	v, _ := Pair(2)
	p := PortabilityHost(v, 99)
	if p.HostSeed == v.HostSeed {
		t.Errorf("portability host should be a different physical run")
	}
	if p.Epoch != v.Epoch || p.BuildRoot != v.BuildRoot || p.NumCPU != v.NumCPU {
		t.Errorf("portability reruns keep nominal conditions")
	}
}

func TestPerturbedSchedule(t *testing.T) {
	first, _ := Pair(7)
	if p0 := Perturbed(7, 0); p0.HostSeed != first.HostSeed {
		t.Errorf("run 0 must be the farm's own first variation")
	}
	seen := map[uint64]int{}
	for r := 0; r < 16; r++ {
		p := Perturbed(7, r)
		if q := Perturbed(7, r); q.HostSeed != p.HostSeed {
			t.Fatalf("run %d not deterministic", r)
		}
		if prev, dup := seen[p.HostSeed]; dup {
			t.Errorf("runs %d and %d share a physical host", prev, r)
		}
		seen[p.HostSeed] = r
		if p.BuildRoot != first.BuildRoot || p.Epoch != first.Epoch || p.NumCPU != first.NumCPU {
			t.Errorf("run %d changed nominal conditions — only host accidents may vary", r)
		}
	}
}

func valueOf(env []string, prefix string) string {
	for _, kv := range env {
		if strings.HasPrefix(kv, prefix) {
			return kv[len(prefix):]
		}
	}
	return ""
}

func TestByzantinePlanForDeterministicAndDisjoint(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		p1 := ByzantinePlanFor(seed, 5)
		p2 := ByzantinePlanFor(seed, 5)
		if p1 != p2 {
			t.Fatalf("seed %d: plan not a pure function of the seed", seed)
		}
		// Simultaneous adversaries must sit on distinct worker ordinals —
		// one node plays one role per schedule.
		if p1.LieOutput > 0 && p1.LieOutput == p1.CorruptAttestation {
			t.Fatalf("seed %d: liar and corrupter share ordinal %d", seed, p1.LieOutput)
		}
		if p1.LieOutput > 0 && p1.LieOutput == p1.WithholdCosign {
			t.Fatalf("seed %d: liar and withholder share ordinal %d", seed, p1.LieOutput)
		}
		for _, ord := range []int{p1.LieOutput, p1.CorruptAttestation, p1.WithholdCosign} {
			if ord < 0 || ord > 5 {
				t.Fatalf("seed %d: worker ordinal %d out of range", seed, ord)
			}
		}
	}
	// The sweep must actually seat adversaries somewhere.
	seated := 0
	for seed := uint64(0); seed < 64; seed++ {
		if ByzantinePlanFor(seed, 5).Byzantine() {
			seated++
		}
	}
	if seated == 0 {
		t.Fatal("no seed seats any adversary")
	}
	if p := ByzantinePlanFor(3, 0); p.Byzantine() {
		t.Fatal("zero-node farm must get an honest plan")
	}
}
