package fs

import "repro/internal/prng"

// This file implements mid-run filesystem sealing for crash-consistent
// checkpoints (ISSUE 5). Freeze/Fork (cow.go) solve the *boot-time* problem:
// every inode of a template carries the same boot stamp, so a fork can
// materialize shells lazily and stamp them all with bootStamp. A checkpoint
// has the opposite shape — the tree has been mutated mid-run, inode times,
// recycled numbers and COW flags all differ per inode — so a seal must be an
// eager deep *identity* clone: every observable field copied verbatim, no
// entropy draw, no restamping.
//
// Identity contract. For a resumed run to stay bitwise-equivalent to an
// uninterrupted one, the clone preserves, per inode: Ino, Mode, UID, GID,
// Nlink, Atime/Mtime/Ctime, Target, DevID, pipe contents, hard-link aliasing
// (memoized like Fork's clones map), and — critically — the cowData flag.
// Data still shared read-only with a frozen template base is aliased, not
// copied (the base is immutable), and stays marked cowData so the resumed
// run fires the same OnCOWBreak events at the same writes as the original
// would have. Allocator state (inoBase, nextIno, freeInos LIFO order,
// hashSeed, dev, stride) is copied verbatim so post-resume creations receive
// exactly the inode numbers the uninterrupted run hands out.
//
// Sealing a live fork walks it through ents(), which materializes deferred
// directory maps in the *source*. That mutation is behaviourally invisible
// (materialization is lazy only as an allocation optimization), so sealing a
// running filesystem does not perturb the run being sealed.

// The public sealing API lives in delta.go: SealCheckpoint produces a *Seal
// (full or delta-chained), Seal.Resume rebuilds a live filesystem from one.
// This file keeps the eager identity cloner both of them are built on.

// cloneFSHeader copies the allocator and identity state of f into a fresh
// FS bound to the given clock and entropy pool (both nil for an immutable
// seal). No entropy is drawn: the inode numbering base was fixed at the
// original boot and carries over verbatim.
func (f *FS) cloneFSHeader(clock Clock, entropy *prng.Host) *FS {
	return &FS{
		profile:   f.profile,
		clock:     clock,
		entropy:   entropy,
		dev:       f.dev,
		inoBase:   f.inoBase,
		nextIno:   f.nextIno,
		inoStride: f.inoStride,
		freeInos:  append([]uint64(nil), f.freeInos...),
		hashSeed:  f.hashSeed,
		bootStamp: f.bootStamp,
		sealEpoch: 1,
	}
}

// deepClone copies the whole tree eagerly, preserving identity fields, and
// records the source→clone mapping in memo.
func (f *FS) deepClone(clock Clock, entropy *prng.Host, memo map[*Inode]*Inode) *FS {
	nf := f.cloneFSHeader(clock, entropy)
	nf.Root = cloneInodeDeep(f.Root, nf, memo)
	nf.Root.parent = nf.Root
	return nf
}

// cloneInodeDeep copies one inode and (for directories) its subtree. The
// memo keeps hard links aliased within the clone exactly as in the source.
func cloneInodeDeep(n *Inode, nf *FS, memo map[*Inode]*Inode) *Inode {
	if c, ok := memo[n]; ok {
		return c
	}
	c := &Inode{
		Ino: n.Ino, Mode: n.Mode, UID: n.UID, GID: n.GID, Nlink: n.Nlink,
		Atime: n.Atime, Mtime: n.Mtime, Ctime: n.Ctime,
		Target: n.Target, DevID: n.DevID,
		fs: nf,
	}
	memo[n] = c
	switch {
	case n.IsDir():
		ents := n.ents() // materialize any deferred fork map; invisible to the source
		c.entries = make(map[string]*Inode, len(ents))
		for name, child := range ents {
			cc := cloneInodeDeep(child, nf, memo)
			if cc.parent == nil {
				cc.parent = c
			}
			c.entries[name] = cc
		}
	case n.IsRegular():
		if n.cowData {
			// Shared read-only with an immutable frozen base: alias it and
			// keep the flag, so the resumed run breaks COW (and records the
			// break) at exactly the writes the uninterrupted run would.
			c.Data = n.Data
			c.cowData = true
		} else {
			c.Data = append([]byte(nil), n.Data...)
		}
	case n.IsFIFO():
		c.Pipe = n.Pipe.cloneState()
	}
	return c
}

// cloneState deep-copies a pipe's runtime state (buffered bytes, end
// counts), unlike the fresh empty pipe a boot-time Fork shell gets.
func (p *Pipe) cloneState() *Pipe {
	if p == nil {
		return nil
	}
	return &Pipe{
		buf:      append([]byte(nil), p.buf...),
		capacity: p.capacity,
		readers:  p.readers,
		writers:  p.writers,
	}
}
