package fs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestPipe(capacity int) *Pipe {
	p := NewPipe(capacity)
	p.AddReader()
	p.AddWriter()
	return p
}

func TestPipeBasicFlow(t *testing.T) {
	p := newTestPipe(8)
	n, broken := p.Write([]byte("hello"))
	if n != 5 || broken {
		t.Fatalf("write = %d, %v", n, broken)
	}
	buf := make([]byte, 16)
	n, eof := p.Read(buf)
	if n != 5 || eof || string(buf[:5]) != "hello" {
		t.Fatalf("read = %d %v %q", n, eof, buf[:n])
	}
}

func TestPipePartialWriteAtCapacity(t *testing.T) {
	p := newTestPipe(4)
	n, _ := p.Write([]byte("abcdef"))
	if n != 4 {
		t.Fatalf("partial write = %d, want 4", n)
	}
	n, _ = p.Write([]byte("xy"))
	if n != 0 {
		t.Fatalf("full pipe accepted %d bytes", n)
	}
	buf := make([]byte, 2)
	n, _ = p.Read(buf)
	if n != 2 || string(buf) != "ab" {
		t.Fatalf("read = %d %q", n, buf)
	}
	n, _ = p.Write([]byte("xy"))
	if n != 2 {
		t.Fatalf("after drain write = %d", n)
	}
}

func TestPipeEOFOnlyAfterWritersClose(t *testing.T) {
	p := newTestPipe(8)
	buf := make([]byte, 4)
	if n, eof := p.Read(buf); n != 0 || eof {
		t.Fatalf("empty pipe with writer: n=%d eof=%v (should block, not EOF)", n, eof)
	}
	p.Write([]byte("zz"))
	p.CloseWriter()
	if n, eof := p.Read(buf); n != 2 || eof {
		t.Fatalf("buffered data first: n=%d eof=%v", n, eof)
	}
	if n, eof := p.Read(buf); n != 0 || !eof {
		t.Fatalf("then EOF: n=%d eof=%v", n, eof)
	}
}

func TestPipeBrokenOnReaderClose(t *testing.T) {
	p := newTestPipe(8)
	p.CloseReader()
	if _, broken := p.Write([]byte("x")); !broken {
		t.Fatalf("write to readerless pipe should break (EPIPE)")
	}
}

func TestPipeSetCapacity(t *testing.T) {
	p := newTestPipe(4)
	p.SetCapacity(1 << 16)
	if n, _ := p.Write(make([]byte, 10_000)); n != 10_000 {
		t.Errorf("grown pipe accepted %d", n)
	}
	p.SetCapacity(0) // ignored
	if p.Space() <= 0 {
		t.Errorf("zero capacity applied")
	}
}

// Property: bytes come out exactly as they went in, across arbitrary
// interleavings of writes and drains.
func TestPipeConservationProperty(t *testing.T) {
	prop := func(chunks [][]byte, drains []uint8) bool {
		p := newTestPipe(64)
		var in, out bytes.Buffer
		di := 0
		for _, c := range chunks {
			rest := c
			for len(rest) > 0 {
				n, broken := p.Write(rest)
				if broken {
					return false
				}
				in.Write(rest[:n])
				rest = rest[n:]
				if n == 0 { // full: drain some
					want := 1
					if di < len(drains) {
						want = 1 + int(drains[di])%32
						di++
					}
					buf := make([]byte, want)
					m, _ := p.Read(buf)
					out.Write(buf[:m])
					if m == 0 {
						return false // full pipe must be readable
					}
				}
			}
		}
		p.CloseWriter()
		for {
			buf := make([]byte, 17)
			m, eof := p.Read(buf)
			out.Write(buf[:m])
			if eof {
				break
			}
			if m == 0 {
				return false
			}
		}
		return bytes.Equal(in.Bytes(), out.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
