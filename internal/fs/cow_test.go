package fs

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/abi"
	"repro/internal/machine"
	"repro/internal/prng"
)

// templateImage is a small but representative base image: nested dirs, an
// empty dir, files, a symlink, a device, a fifo.
func templateImage() *Image {
	im := NewImage()
	im.AddDir("/build", 0o755)
	im.AddDir("/empty", 0o700)
	im.AddFile("/bin/cc", 0o755, []byte("#!cc"))
	im.AddFile("/bin/ld", 0o755, []byte("#!ld"))
	im.AddFile("/src/main.c", 0o644, []byte("int main(){}"))
	im.AddFile("/src/zero.o", 0o644, nil)
	im.AddSymlink("/usr/bin/cc", "/bin/cc")
	im.AddDev("/dev/urandom", "urandom")
	im.AddFifo("/run/pipe", 0o622)
	return im
}

// coldFS builds a filesystem the way a cold kernel boot does: constant boot
// clock (the simulated clock does not advance during construction), one
// entropy pool, Populate.
func coldFS(im *Image, seed uint64, stamp int64) *FS {
	f := New(machine.CloudLabC220G5(), func() int64 { return stamp }, prng.NewHost(seed))
	f.Populate(im)
	return f
}

// forkFS builds the same filesystem through the template path: populate a
// base with throwaway entropy, freeze it, fork with the run's clock+entropy.
func forkFS(im *Image, seed uint64, stamp int64) *FS {
	base := New(machine.CloudLabC220G5(), func() int64 { return 0 }, prng.NewHost(0xBA5E))
	base.Populate(im)
	base.Freeze()
	return base.Fork(func() int64 { return stamp }, prng.NewHost(seed))
}

// inodeRecord flattens every observable property of one walked inode.
type inodeRecord struct {
	path                string
	ino                 uint64
	mode, uid, gid      uint32
	nlink               uint32
	atime, mtime, ctime int64
	size                int64
	data                string
	target, devID       string
	readdir             string // host-order listing, dirs only
}

func observe(f *FS) []inodeRecord {
	var out []inodeRecord
	f.Walk(f.Root, func(p string, n *Inode) {
		r := inodeRecord{
			path: p, ino: n.Ino, mode: n.Mode, uid: n.UID, gid: n.GID,
			nlink: n.Nlink, atime: n.Atime, mtime: n.Mtime, ctime: n.Ctime,
			size: n.Size(), data: string(n.Data), target: n.Target, devID: n.DevID,
		}
		if n.IsDir() {
			for _, e := range f.ReadDirRaw(n) {
				r.readdir += fmt.Sprintf("%s:%d;", e.Name, e.Ino)
			}
		}
		out = append(out, r)
	})
	return out
}

func diffRecords(t *testing.T, cold, fork []inodeRecord) {
	t.Helper()
	if len(cold) != len(fork) {
		t.Fatalf("inode count: cold %d, fork %d", len(cold), len(fork))
	}
	for i := range cold {
		if cold[i] != fork[i] {
			t.Errorf("inode %q differs:\n cold %+v\n fork %+v", cold[i].path, cold[i], fork[i])
		}
	}
}

// The tentpole contract: a fork of a frozen base is bitwise indistinguishable
// from a cold Populate with the same image, clock and entropy — inode
// numbers, timestamps, readdir order, sizes, everything stat can see.
func TestForkBitwiseEqualsCold(t *testing.T) {
	im := templateImage()
	const seed, stamp = 0xAAAA, int64(1_367_107_200_000_000_000)
	cold := coldFS(im, seed, stamp)
	fork := forkFS(im, seed, stamp)
	diffRecords(t, observe(cold), observe(fork))
}

// Post-fork mutations must also track cold behaviour exactly: allocation
// order, recycling, timestamps of new inodes.
func TestForkMutationsMatchCold(t *testing.T) {
	im := templateImage()
	const seed = 0xBEEF
	clockA, clockB := int64(1e18), int64(1e18)
	cold := New(machine.CloudLabC220G5(), func() int64 { clockA += 1e6; return clockA }, prng.NewHost(seed))
	cold.Populate(im)
	base := New(machine.CloudLabC220G5(), func() int64 { return 1e18 + 1e6 }, prng.NewHost(77))
	base.Populate(im)
	base.Freeze()
	fork := base.Fork(func() int64 { clockB += 1e6; return clockB }, prng.NewHost(seed))

	mutate := func(f *FS) {
		ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
		build, _ := f.Resolve(ctx, "/build", true)
		n, _ := f.CreateFile(build, "out.o", 0o644, 0, 0)
		n.WriteAt([]byte("obj"), 0)
		src, _ := f.Resolve(ctx, "/src", true)
		f.Unlink(src, "zero.o") // frees an ino for recycling
		n2, _ := f.CreateFile(build, "reused", 0o644, 0, 0)
		_ = n2
		f.Rename(build, "out.o", build, "final.o")
		cc, _ := f.Resolve(ctx, "/bin/cc", true)
		cc.Truncate(2)
		cc.WriteAt([]byte("X"), 1)
	}
	// The cold tree stamped each populated inode with an advancing clock,
	// which the fork path cannot (and need not) replicate; this test pins the
	// *mutation* behaviour, so compare only inodes the mutations touched.
	mutate(cold)
	mutate(fork)
	pick := func(rs []inodeRecord) map[string]inodeRecord {
		out := map[string]inodeRecord{}
		for _, r := range rs {
			switch r.path {
			case "/build/final.o", "/build/reused", "/bin/cc":
				out[r.path] = r
			}
		}
		return out
	}
	coldR, forkR := pick(observe(cold)), pick(observe(fork))
	for p, c := range coldR {
		fr, ok := forkR[p]
		if !ok {
			t.Fatalf("fork lost %q", p)
		}
		// Ino equality holds because both allocators saw the same sequence
		// of allocations and frees from the same entropy base.
		if c.ino != fr.ino || c.data != fr.data || c.size != fr.size || c.mode != fr.mode {
			t.Errorf("%q: cold %+v fork %+v", p, c, fr)
		}
	}
	if len(forkR) != len(coldR) {
		t.Errorf("picked sets differ: %d vs %d", len(coldR), len(forkR))
	}
}

// Mutating a fork must never reach the frozen base or a sibling fork.
func TestForkIsolation(t *testing.T) {
	im := templateImage()
	base := New(machine.CloudLabC220G5(), func() int64 { return 0 }, prng.NewHost(1))
	base.Populate(im)
	base.Freeze()
	before := base.SnapshotImage(base.Root)

	f1 := base.Fork(func() int64 { return 5 }, prng.NewHost(2))
	f2 := base.Fork(func() int64 { return 5 }, prng.NewHost(3))

	ctx1 := LookupCtx{Root: f1.Root, Cwd: f1.Root}
	cc, _ := f1.Resolve(ctx1, "/bin/cc", true)
	cc.WriteAt([]byte("CORRUPT"), 0) // in-place overwrite: must break COW
	cc.Truncate(3)
	src, _ := f1.Resolve(ctx1, "/src", true)
	f1.Unlink(src, "main.c")
	f1.Rename(src, "zero.o", src, "one.o")
	f1.CreateFile(src, "new.c", 0o600, 0, 0)
	ln, _ := f1.Resolve(ctx1, "/usr/bin/cc", false)
	ln.Target = "/elsewhere"
	d, _ := f1.Resolve(ctx1, "/empty", true)
	d.Mode = abi.ModeDir | 0o000

	after := base.SnapshotImage(base.Root)
	if !before.Equal(after) {
		t.Fatalf("mutating a fork changed the frozen base")
	}
	ctx2 := LookupCtx{Root: f2.Root, Cwd: f2.Root}
	cc2, err := f2.Resolve(ctx2, "/bin/cc", true)
	if err != abi.OK || string(cc2.Data) != "#!cc" {
		t.Errorf("sibling fork sees the mutation: %q", cc2.Data)
	}
	if _, err := f2.Resolve(ctx2, "/src/main.c", true); err != abi.OK {
		t.Errorf("sibling fork lost /src/main.c: %v", err)
	}
}

// Hard links in the base must stay aliased inside a fork: one shell, two
// names.
func TestForkPreservesHardLinks(t *testing.T) {
	base := New(machine.CloudLabC220G5(), func() int64 { return 0 }, prng.NewHost(1))
	d, _ := base.Mkdir(base.Root, "d", 0o755, 0, 0)
	orig, _ := base.CreateFile(base.Root, "orig", 0o644, 0, 0)
	orig.WriteAt([]byte("shared"), 0)
	base.Link(d, "alias", orig)
	base.Freeze()

	f := base.Fork(func() int64 { return 9 }, prng.NewHost(2))
	ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
	a, _ := f.Resolve(ctx, "/orig", true)
	b, _ := f.Resolve(ctx, "/d/alias", true)
	if a != b {
		t.Fatalf("hard link split into two shells")
	}
	if a.Nlink != 2 {
		t.Errorf("nlink = %d, want 2", a.Nlink)
	}
	a.WriteAt([]byte("WRITTEN"), 0)
	if string(b.Data) != "WRITTEN" {
		t.Errorf("write through one name invisible through the other")
	}
}

// A frozen base rejects structural mutation outright.
func TestFrozenBasePanicsOnMutation(t *testing.T) {
	base := New(machine.CloudLabC220G5(), func() int64 { return 0 }, prng.NewHost(1))
	base.Populate(templateImage())
	base.Freeze()
	defer func() {
		if recover() == nil {
			t.Errorf("CreateFile on a frozen base did not panic")
		}
	}()
	base.CreateFile(base.Root, "nope", 0o644, 0, 0)
}

// Many goroutines forking and mutating concurrently: the frozen base is
// read-only shared state, so this must be -race clean with no locks.
func TestConcurrentForks(t *testing.T) {
	im := templateImage()
	base := New(machine.CloudLabC220G5(), func() int64 { return 0 }, prng.NewHost(1))
	base.Populate(im)
	base.Freeze()

	const workers = 16
	snaps := make([]*Image, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := base.Fork(func() int64 { return 7 }, prng.NewHost(0x5EED))
			ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
			cc, _ := f.Resolve(ctx, "/bin/cc", true)
			cc.WriteAt([]byte("gen"), 0)
			build, _ := f.Resolve(ctx, "/build", true)
			f.CreateFile(build, "o", 0o644, 0, 0)
			snaps[i] = f.SnapshotImage(f.Root)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if !snaps[0].Equal(snaps[i]) {
			t.Fatalf("fork %d diverged from fork 0 under identical inputs", i)
		}
	}
}
