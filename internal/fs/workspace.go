package fs

import (
	"fmt"
	"sort"

	"repro/internal/abi"
)

// This file implements thread workspaces (ISSUE 7): private copy-on-write
// views of a *live* filesystem that let sibling threads run concurrently
// between deterministic sync points, in the workspace-consistency model of
// Aviram/Ford's deterministic-parallelism work.
//
// A Workspace differs from a template Fork (cow.go) in every contract that
// matters:
//
//   - the base is live, not frozen: the container keeps mutating it through
//     the thread that holds the execution token, while detached siblings see
//     a journal overlay on top of it;
//   - forking a workspace draws NO entropy and reads NO clock — a workspace
//     is scheduling machinery, not a boot, so its existence must be invisible
//     to the guest's logical history;
//   - mutations are journaled, not applied: each op carries the logical rank
//     (the thread's LClock when the op was issued), and the journal is the
//     unit of merging.
//
// Merge contract (§4f of DESIGN.md). MergeWorkspaces processes workspaces in
// vTID order, reduces each journal to one final effect per path, and applies
// effects to the base in sorted-path order. When two workspaces leave
// different final effects on one path, the higher logical rank wins
// (write-wins by rank); an exact rank tie with differing effects is a
// deterministic merge conflict, surfaced as *MergeConflictError — never as a
// host-order-dependent pick. The result, the applied-op count and the merge
// digest are all pure functions of the journal set, so any host completion
// order of the workspace goroutines merges to a byte-identical filesystem.

// Workspace is one thread's private view of a live FS between sync points.
type Workspace struct {
	base *FS
	vtid int

	// journal is the ordered mutation log, ranks non-decreasing.
	journal []wsOp

	// overlay caches this workspace's own view per path so reads observe the
	// workspace's writes without touching the base.
	overlay map[string]wsOp

	discarded bool
}

// wsOp kinds. A journal entry's effect is fully described by (kind, data).
const (
	wsWrite = iota // create-or-replace regular file contents
	wsMkdir        // create directory
	wsRemove       // unlink file / remove empty directory
)

// wsOp is one journaled mutation.
type wsOp struct {
	kind int
	path string
	data []byte
	rank int64 // logical rank (issuing thread's LClock); ordering authority
	vtid int   // owning workspace's vTID, for conflict reports
}

// MergeConflictError reports two workspaces whose final effects on one path
// tie on logical rank but differ in content. The error is itself
// deterministic: vTIDs are reported in ascending order.
type MergeConflictError struct {
	Path  string
	VTIDs [2]int
}

func (e *MergeConflictError) Error() string {
	return fmt.Sprintf("fs: workspace merge conflict on %s (vTID %d vs %d at equal rank)",
		e.Path, e.VTIDs[0], e.VTIDs[1])
}

// MergeStats summarizes one MergeWorkspaces call.
type MergeStats struct {
	Applied   int    // final effects applied to the base
	Conflicts int    // conflicting paths (0 unless the merge errored)
	Digest    uint64 // FNV over the winning effect set, for ring events/tests
}

// ForkWorkspace returns a private view of the live filesystem for the thread
// with the given vTID. It draws no entropy and reads no clock: workspace
// lifecycle must leave the guest-visible logical history untouched.
func (f *FS) ForkWorkspace(vtid int) *Workspace {
	f.mustMutable()
	f.wsOut++
	return &Workspace{base: f, vtid: vtid, overlay: make(map[string]wsOp)}
}

// Outstanding reports how many forked workspaces have been neither merged
// nor discarded. Checkpoint seals require this to be zero.
func (f *FS) Outstanding() int { return f.wsOut }

// VTID returns the owning thread's virtual TID.
func (w *Workspace) VTID() int { return w.vtid }

// Ops returns the journal length.
func (w *Workspace) Ops() int { return len(w.journal) }

// Discard drops the workspace without merging (thread killed mid-phase).
func (w *Workspace) Discard() {
	if !w.discarded {
		w.discarded = true
		w.base.wsOut--
	}
}

func (w *Workspace) record(op wsOp) {
	w.journal = append(w.journal, op)
	w.overlay[op.path] = op
}

// WriteFile journals a create-or-replace of path's contents at rank.
func (w *Workspace) WriteFile(path string, data []byte, rank int64) abi.Errno {
	if err := w.checkParent(path); err != abi.OK {
		return err
	}
	w.record(wsOp{kind: wsWrite, path: wsClean(path), data: append([]byte(nil), data...), rank: rank, vtid: w.vtid})
	return abi.OK
}

// Mkdir journals a directory creation at rank.
func (w *Workspace) Mkdir(path string, rank int64) abi.Errno {
	if err := w.checkParent(path); err != abi.OK {
		return err
	}
	w.record(wsOp{kind: wsMkdir, path: wsClean(path), rank: rank, vtid: w.vtid})
	return abi.OK
}

// Remove journals an unlink/rmdir of path at rank.
func (w *Workspace) Remove(path string, rank int64) abi.Errno {
	if _, err := w.stat(path); err != abi.OK {
		return err
	}
	w.record(wsOp{kind: wsRemove, path: wsClean(path), rank: rank, vtid: w.vtid})
	return abi.OK
}

// ReadFile returns path's contents as this workspace sees them: its own
// journal overlay first, the live base underneath.
func (w *Workspace) ReadFile(path string) ([]byte, abi.Errno) {
	if op, ok := w.overlay[wsClean(path)]; ok {
		switch op.kind {
		case wsWrite:
			return op.data, abi.OK
		case wsRemove:
			return nil, abi.ENOENT
		case wsMkdir:
			return nil, abi.EISDIR
		}
	}
	n, err := w.base.Resolve(LookupCtx{Root: w.base.Root, Cwd: w.base.Root}, path, true)
	if err != abi.OK {
		return nil, err
	}
	if n.IsDir() {
		return nil, abi.EISDIR
	}
	return n.Data, abi.OK
}

// stat reports whether path exists in the workspace view.
func (w *Workspace) stat(path string) (int, abi.Errno) {
	if op, ok := w.overlay[wsClean(path)]; ok {
		if op.kind == wsRemove {
			return 0, abi.ENOENT
		}
		return op.kind, abi.OK
	}
	n, err := w.base.Resolve(LookupCtx{Root: w.base.Root, Cwd: w.base.Root}, path, true)
	if err != abi.OK {
		return 0, err
	}
	if n.IsDir() {
		return wsMkdir, abi.OK
	}
	return wsWrite, abi.OK
}

// checkParent verifies the parent directory exists in the workspace view.
func (w *Workspace) checkParent(path string) abi.Errno {
	p := wsClean(path)
	i := lastSlash(p)
	if i <= 0 {
		return abi.OK // parent is the root
	}
	kind, err := w.stat(p[:i])
	if err != abi.OK {
		return err
	}
	if kind != wsMkdir {
		return abi.ENOTDIR
	}
	return abi.OK
}

func wsClean(path string) string {
	return "/" + joinComps(splitPath(path))
}

func joinComps(comps []string) string {
	out := ""
	for i, c := range comps {
		if i > 0 {
			out += "/"
		}
		out += c
	}
	return out
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}

// MergeWorkspaces merges the workspace set onto its shared base. The input
// slice may arrive in any host completion order; the merge sorts by vTID
// first, so every ordering decision below is a pure function of the journal
// contents. On conflict the base is left untouched and stats still carries
// the deterministic conflict count and digest.
func MergeWorkspaces(wss []*Workspace) (MergeStats, error) {
	var stats MergeStats
	if len(wss) == 0 {
		return stats, nil
	}
	base := wss[0].base
	ordered := make([]*Workspace, len(wss))
	copy(ordered, wss)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].vtid < ordered[j].vtid })

	// Reduce: per path, each workspace's final effect; across workspaces the
	// highest rank wins; an exact tie with differing effects is a conflict.
	winners := make(map[string]wsOp)
	var conflict *MergeConflictError
	for _, w := range ordered {
		if w.base != base {
			return stats, fmt.Errorf("fs: MergeWorkspaces across different bases")
		}
		for _, op := range w.journal {
			// Within one journal, later ops supersede earlier ones on the same
			// path; the overlay map already holds the final per-ws effect, so
			// only consider it once, at its first journal appearance.
			final := w.overlay[op.path]
			if final.rank != op.rank || final.kind != op.kind {
				continue // superseded within this workspace
			}
			cur, ok := winners[op.path]
			switch {
			case !ok:
				winners[op.path] = final
			case final.rank > cur.rank:
				winners[op.path] = final
			case final.rank == cur.rank && !sameEffect(final, cur):
				stats.Conflicts++
				if conflict == nil {
					lo, hi := cur.vtid, final.vtid
					if lo > hi {
						lo, hi = hi, lo
					}
					conflict = &MergeConflictError{Path: op.path, VTIDs: [2]int{lo, hi}}
				}
			}
		}
	}

	stats.Digest = digestWinners(winners)
	if conflict != nil {
		return stats, conflict
	}

	// Apply in sorted-path order so mkdir precedes children and the base's
	// mutation sequence (mtime touches, inode allocation) is deterministic.
	paths := make([]string, 0, len(winners))
	for p := range winners {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	ctx := LookupCtx{Root: base.Root, Cwd: base.Root}
	for _, p := range paths {
		if err := applyOp(base, ctx, winners[p]); err != abi.OK {
			return stats, fmt.Errorf("fs: workspace merge apply %s: %s", p, err)
		}
		stats.Applied++
	}
	for _, w := range ordered {
		w.Discard()
	}
	return stats, nil
}

// sameEffect reports whether two ops would leave the path identical.
func sameEffect(a, b wsOp) bool {
	if a.kind != b.kind {
		return false
	}
	return string(a.data) == string(b.data)
}

// digestWinners folds the winning effect set into one FNV value, iterating
// in sorted-path order so the digest is host-order independent.
func digestWinners(winners map[string]wsOp) uint64 {
	paths := make([]string, 0, len(winners))
	for p := range winners {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := uint64(0xcbf29ce484222325)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
		h ^= 0xff
		h *= 0x100000001b3
	}
	for _, p := range paths {
		op := winners[p]
		mix(p)
		h ^= uint64(op.kind)
		h *= 0x100000001b3
		h ^= uint64(op.rank)
		h *= 0x100000001b3
		mix(string(op.data))
	}
	return h
}

// applyOp replays one winning effect onto the live base.
func applyOp(f *FS, ctx LookupCtx, op wsOp) abi.Errno {
	switch op.kind {
	case wsWrite:
		n, err := f.Resolve(ctx, op.path, true)
		if err == abi.ENOENT {
			dir, name, perr := f.ResolveParent(ctx, op.path)
			if perr != abi.OK {
				return perr
			}
			n, perr = f.CreateFile(dir, name, 0o644, 0, 0)
			if perr != abi.OK {
				return perr
			}
		} else if err != abi.OK {
			return err
		}
		if e := n.Truncate(0); e != abi.OK {
			return e
		}
		n.WriteAt(op.data, 0)
		return abi.OK
	case wsMkdir:
		dir, name, err := f.ResolveParent(ctx, op.path)
		if err != abi.OK {
			return err
		}
		_, err = f.Mkdir(dir, name, 0o755, 0, 0)
		if err == abi.EEXIST {
			return abi.OK // another merge already created it
		}
		return err
	case wsRemove:
		n, err := f.Resolve(ctx, op.path, false)
		if err != abi.OK {
			return abi.OK // already gone
		}
		dir, name, perr := f.ResolveParent(ctx, op.path)
		if perr != abi.OK {
			return perr
		}
		if n.IsDir() {
			return f.Rmdir(dir, name)
		}
		return f.Unlink(dir, name)
	}
	return abi.EINVAL
}
