package fs

import "repro/internal/abi"

// Amend replaces the contents of an existing regular file in place, leaving
// every other property of the tree — inode number, link count, timestamps,
// directory sizes, allocator state — untouched. It is the incremental-rebuild
// patch primitive (ISSUE 8): after forking a checkpoint seal whose prefix
// never read the file, the rebuilder amends the dirty source bytes into the
// resumed filesystem, making the suffix's reads see exactly what a cold build
// of the patched image would have populated.
//
// The amended inode gets a fresh Data slice and drops any COW aliasing with
// the seal's frozen base, so the patch can never leak into the sealed state
// or be clobbered by a later COW break. Amend is content-only by design —
// it cannot create, remove or retype a file, because a shape change would
// alter inode allocation order and directory listings for the whole run
// (those patches go cold; see derive.PlanRebuild).
func (f *FS) Amend(path string, data []byte) bool {
	f.mustMutable()
	n, err := f.Resolve(LookupCtx{Root: f.Root, Cwd: f.Root}, path, true)
	if err != abi.OK || n == nil || !n.IsRegular() {
		return false
	}
	n.Data = append([]byte(nil), data...)
	n.cowData = false
	n.dataEpoch = f.sealEpoch
	return true
}
