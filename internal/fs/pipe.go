package fs

// DefaultPipeCapacity matches Linux's default 64 KiB pipe buffer.
const DefaultPipeCapacity = 64 * 1024

// Pipe is a bounded byte stream shared by pipe(2) fds and FIFO inodes.
// Reads and writes are partial by nature — a read returns whatever is
// buffered, a write stops when the buffer fills — which is exactly the
// behaviour DetTrace's read/write retry machinery (§5.5, Fig. 4) exists to
// hide from user processes.
type Pipe struct {
	buf      []byte
	capacity int
	readers  int
	writers  int
}

// NewPipe returns an empty pipe with the given capacity.
func NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		capacity = DefaultPipeCapacity
	}
	return &Pipe{capacity: capacity}
}

// AddReader / AddWriter register an open fd end.
func (p *Pipe) AddReader() { p.readers++ }

// AddWriter registers a write end.
func (p *Pipe) AddWriter() { p.writers++ }

// CloseReader drops a read end.
func (p *Pipe) CloseReader() { p.readers-- }

// CloseWriter drops a write end; when the last writer goes away, readers
// start seeing EOF once the buffer drains.
func (p *Pipe) CloseWriter() { p.writers-- }

// SetCapacity resizes the buffer limit (F_SETPIPE_SZ).
func (p *Pipe) SetCapacity(n int) {
	if n > 0 {
		p.capacity = n
	}
}

// Buffered returns the number of bytes waiting to be read.
func (p *Pipe) Buffered() int { return len(p.buf) }

// Space returns the remaining write capacity.
func (p *Pipe) Space() int { return p.capacity - len(p.buf) }

// HasWriters reports whether any write end remains open.
func (p *Pipe) HasWriters() bool { return p.writers > 0 }

// HasReaders reports whether any read end remains open.
func (p *Pipe) HasReaders() bool { return p.readers > 0 }

// Read moves up to len(dst) buffered bytes into dst.
//
//	n > 0            data was transferred (possibly fewer bytes than asked)
//	n == 0, eof      all writers closed and the buffer is empty
//	n == 0, !eof     nothing buffered yet: the caller would block
func (p *Pipe) Read(dst []byte) (n int, eof bool) {
	if len(p.buf) == 0 {
		return 0, p.writers == 0
	}
	n = copy(dst, p.buf)
	p.buf = p.buf[n:]
	return n, false
}

// Write appends up to len(src) bytes.
//
//	n > 0            bytes were accepted (possibly fewer than offered)
//	n == 0, !broken  the buffer is full: the caller would block
//	broken           no readers remain: the caller gets EPIPE/SIGPIPE
func (p *Pipe) Write(src []byte) (n int, broken bool) {
	if p.readers == 0 {
		return 0, true
	}
	space := p.capacity - len(p.buf)
	if space == 0 {
		return 0, false
	}
	if len(src) > space {
		src = src[:space]
	}
	p.buf = append(p.buf, src...)
	return len(src), false
}
