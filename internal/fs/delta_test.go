package fs

import (
	"fmt"
	"testing"

	"repro/internal/abi"
	"repro/internal/prng"
)

// deltaMutations is a scripted sequence of representative tree mutations —
// data writes, truncation, creation, link/unlink, rename, metadata touches —
// applied one step per seal so every delta in the chain has something fresh
// and plenty to share.
func deltaMutations(f *FS) []func() {
	ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
	get := func(path string) *Inode {
		n, err := f.Resolve(ctx, path, true)
		if err != abi.OK {
			panic(fmt.Sprintf("resolve %s: %v", path, err))
		}
		return n
	}
	return []func(){
		func() { get("/src/main.c").WriteAt([]byte("int main(){return 1;}"), 0) },
		func() {
			dir := get("/build")
			n, _ := f.CreateFile(dir, "a.o", 0o644, 0, 0)
			n.WriteAt([]byte("obj-a"), 0)
		},
		func() { get("/src/main.c").Truncate(4) },
		func() {
			dir := get("/build")
			f.Mkdir(dir, "deps", 0o755, 0, 0)
			f.Symlink(dir, "cc", "/bin/cc", 0, 0)
		},
		func() { get("/bin/ld").WriteAt([]byte("!"), 2) },
		func() { f.Unlink(get("/build"), "a.o") },
		func() {
			f.Rename(get("/src"), "zero.o", get("/build"), "zero.o")
		},
		func() { get("/build/zero.o").WriteAt([]byte("filled"), 0) },
	}
}

// sealSweep drives two identically-constructed filesystems through the same
// mutation script, sealing one in delta mode and the other in full mode at
// every step, and returns both chains.
func sealSweep(t *testing.T) (deltas, fulls []*Seal) {
	t.Helper()
	fd := coldFS(templateImage(), 7, 100)
	ff := coldFS(templateImage(), 7, 100)
	mutsD, mutsF := deltaMutations(fd), deltaMutations(ff)
	deltas = append(deltas, fd.SealCheckpoint(true))
	fulls = append(fulls, ff.SealCheckpoint(false))
	for i := range mutsD {
		mutsD[i]()
		mutsF[i]()
		deltas = append(deltas, fd.SealCheckpoint(true))
		fulls = append(fulls, ff.SealCheckpoint(false))
	}
	return deltas, fulls
}

// TestDeltaChainRestoreEqualsFull is the chain-equivalence property: at
// every chain length k, restoring (base + k deltas) must observe exactly
// what restoring the equivalent standalone full seal does — inode numbers,
// timestamps, data, directory order, everything.
func TestDeltaChainRestoreEqualsFull(t *testing.T) {
	deltas, fulls := sealSweep(t)
	for k := range deltas {
		clock := func() int64 { return 900 }
		rd := deltas[k].Resume(clock, prng.NewHost(3))
		rf := fulls[k].Resume(clock, prng.NewHost(3))
		a, b := observe(rd), observe(rf)
		if len(a) != len(b) {
			t.Fatalf("chain length %d: %d nodes restored from delta chain, %d from full seal", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("chain length %d: node %d differs\n delta: %+v\n full:  %+v", k, i, a[i], b[i])
			}
		}
	}
}

// TestDeltaSealsShareCleanState pins what makes dense checkpointing cheap:
// a delta seal after a small write copies only the dirtied file, sharing
// every clean subtree with the previous seal.
func TestDeltaSealsShareCleanState(t *testing.T) {
	f := coldFS(templateImage(), 7, 100)
	base := f.SealCheckpoint(true)
	bs := base.Stats()
	if bs.Delta {
		t.Fatalf("first seal must be a full base, got delta")
	}
	if bs.Shared != 0 || bs.Fresh != bs.Nodes {
		t.Fatalf("base seal must be all-fresh: %+v", bs)
	}

	ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
	n, _ := f.Resolve(ctx, "/src/main.c", true)
	payload := []byte("patched")
	n.WriteAt(payload, 0)
	d := f.SealCheckpoint(true)
	ds := d.Stats()
	if !ds.Delta || d.Base() != base {
		t.Fatalf("second seal must chain onto the first: %+v", ds)
	}
	if ds.Shared == 0 || ds.Shared <= ds.Fresh {
		t.Fatalf("small write must share most of the tree: %+v", ds)
	}
	// Fresh data is the dirtied file alone (copies are whole-file granular);
	// its ancestors are re-walked dirs — fresh nodes, but no data bytes.
	if ds.FreshBytes != n.Size() {
		t.Fatalf("delta stored %d fresh bytes, want the dirtied file's %d", ds.FreshBytes, n.Size())
	}
	if ds.TotalBytes != bs.TotalBytes {
		t.Fatalf("logical tree size changed: %d -> %d", bs.TotalBytes, ds.TotalBytes)
	}
}

// TestDeltaSharingIsDeep verifies shared nodes are genuinely the previous
// seal's nodes (no copies) and that restoring still deep-copies them — a
// restore must never alias seal state into a live filesystem.
func TestDeltaSharingIsDeep(t *testing.T) {
	f := coldFS(templateImage(), 7, 100)
	s1 := f.SealCheckpoint(true)
	ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
	n, _ := f.Resolve(ctx, "/src/main.c", true)
	n.WriteAt([]byte("x"), 0)
	s2 := f.SealCheckpoint(true)

	c1 := LookupCtx{Root: s1.Tree().Root, Cwd: s1.Tree().Root}
	c2 := LookupCtx{Root: s2.Tree().Root, Cwd: s2.Tree().Root}
	a, _ := s1.Tree().Resolve(c1, "/bin/cc", true)
	b, _ := s2.Tree().Resolve(c2, "/bin/cc", true)
	if a != b {
		t.Fatalf("clean inode not shared between chained seals")
	}

	r := s2.Resume(func() int64 { return 900 }, prng.NewHost(3))
	rc := LookupCtx{Root: r.Root, Cwd: r.Root}
	live, _ := r.Resolve(rc, "/bin/cc", true)
	if live == b {
		t.Fatalf("restore aliased a sealed inode into the live tree")
	}
	live.WriteAt([]byte("mutate"), 0)
	if string(b.Data) == "mutate" {
		t.Fatalf("writing the restored tree mutated the seal")
	}
}

// TestReconstituteEqualsChain folds a delta chain into a standalone full
// seal and checks it observes identically and no longer depends on the chain.
func TestReconstituteEqualsChain(t *testing.T) {
	deltas, _ := sealSweep(t)
	last := deltas[len(deltas)-1]
	full := last.Reconstitute()
	if full.Base() != nil {
		t.Fatalf("reconstituted seal still chains to a base")
	}
	if !full.Valid() || !full.ChainValid() {
		t.Fatalf("reconstituted seal fails validation")
	}
	clock := func() int64 { return 900 }
	a := observe(last.Resume(clock, prng.NewHost(3)))
	b := observe(full.Resume(clock, prng.NewHost(3)))
	if len(a) != len(b) {
		t.Fatalf("node counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs after reconstitution\n chain: %+v\n recon: %+v", i, a[i], b[i])
		}
	}
	fs := full.Stats()
	if fs.Delta || fs.Shared != 0 || fs.FreshBytes != fs.TotalBytes {
		t.Fatalf("reconstituted stats not standalone: %+v", fs)
	}
}

// TestCorruptMidChainInvalidatesSuffix pins the chain validator: corrupting
// one delta link must invalidate that seal and every later seal chained
// through it, while the prefix before the corruption stays restorable.
func TestCorruptMidChainInvalidatesSuffix(t *testing.T) {
	deltas, _ := sealSweep(t)
	if len(deltas) < 5 {
		t.Fatalf("sweep too short: %d seals", len(deltas))
	}
	mid := len(deltas) / 2
	deltas[mid].Corrupt()
	for i, s := range deltas {
		valid := s.ChainValid()
		if i < mid && !valid {
			t.Fatalf("seal %d (before corruption at %d) must stay valid", i, mid)
		}
		if i >= mid && valid {
			t.Fatalf("seal %d (at/after corruption at %d) must be invalid", i, mid)
		}
	}
	// The nearest valid prefix still restores.
	r := deltas[mid-1].Resume(func() int64 { return 900 }, prng.NewHost(3))
	if r == nil || r.Root == nil {
		t.Fatalf("restore from the nearest valid prefix failed")
	}
}

// TestResumedChainSealsLikeUninterrupted: a delta seal taken after a restore
// must chain against the restored seal exactly as the uninterrupted run's
// next seal chains against the original — same sharing, same restored bytes.
func TestResumedChainSealsLikeUninterrupted(t *testing.T) {
	// Uninterrupted: seal, mutate, seal.
	f := coldFS(templateImage(), 7, 100)
	muts := deltaMutations(f)
	f.SealCheckpoint(true)
	muts[0]()
	s2 := f.SealCheckpoint(true)

	// Interrupted twin: seal, restore the seal, replay the mutation, seal.
	g := coldFS(templateImage(), 7, 100)
	g1 := g.SealCheckpoint(true)
	r := g1.Resume(func() int64 { return 100 }, prng.NewHost(9))
	deltaMutations(r)[0]()
	r2 := r.SealCheckpoint(true)

	if r2.Base() != g1 {
		t.Fatalf("post-resume seal does not chain onto the restored seal")
	}
	rs, us := r2.Stats(), s2.Stats()
	if rs.Fresh != us.Fresh || rs.Shared != us.Shared || rs.FreshBytes != us.FreshBytes {
		t.Fatalf("post-resume delta shape differs from uninterrupted:\n resumed: %+v\n original: %+v", rs, us)
	}
	a := observe(s2.Resume(func() int64 { return 900 }, prng.NewHost(3)))
	b := observe(r2.Resume(func() int64 { return 900 }, prng.NewHost(3)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs between resumed and uninterrupted chains", i)
		}
	}
}
