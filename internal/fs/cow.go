package fs

import "repro/internal/prng"

// This file implements the copy-on-write template layer (ISSUE 3): a
// populated FS can be Freeze()d into an immutable base, and any number of
// runs can then Fork() it instead of repeating Populate. The paper's §3
// argument — a container's behaviour is a pure function of its initial
// filesystem state — is what makes the base a cacheable value; the fork
// discipline below is what makes the cache invisible.
//
// Bitwise-equivalence contract. A fork must be indistinguishable, to the
// guest, from a cold boot that ran Populate with the same image, clock and
// entropy:
//
//   - inode numbers: a cold Populate allocates sequentially (stride 1, no
//     recycling) from the boot base 2 + entropy.Uint64()%1_000_000*16. The
//     fork draws its own base with the identical single entropy read and
//     renumbers every shell as forkBase + (baseIno - baseInoBase), so the
//     guest sees exactly the numbers a cold boot would have produced.
//   - timestamps: a cold Populate stamps every inode with clock() at
//     construction, and the simulated clock does not advance during
//     construction — so every initial timestamp equals the boot-time stamp.
//     The fork records that stamp once (bootStamp) and applies it to every
//     shell it materializes, whenever materialization happens.
//   - readdir order: the directory-hash salt is derived from the machine
//     profile name, not from boot entropy, so it is copied verbatim.
//
// Shells. Fork never hands out base inode pointers: path resolution in a
// fork goes through ents(), which materializes per-fork "shell" inodes
// lazily. A shell copies the metadata, shares file Data read-only (cowData,
// broken by WriteAt/Truncate), and defers directory entries behind cowDir
// until first listing or lookup. The clones map memoizes base→shell so hard
// links keep aliasing inside the fork, and so that concurrent forks of one
// frozen base never write to shared memory: the base is only ever read.

// Freeze marks the filesystem as an immutable template base. After Freeze
// any mutation panics; the only permitted operations are Fork and reads.
func (f *FS) Freeze() {
	if f.base != nil {
		panic("fs: cannot freeze a fork")
	}
	f.frozen = true
}

// Frozen reports whether Freeze has been called.
func (f *FS) Frozen() bool { return f.frozen }

// Fork returns a mutable copy-on-write overlay of a frozen base. The clock
// and entropy pool play exactly the roles they play in New: entropy is read
// once for the inode numbering base, clock supplies the boot timestamp that
// a cold Populate would have stamped on every inode. Any number of forks of
// one base may be taken concurrently.
func (f *FS) Fork(clock Clock, entropy *prng.Host) *FS {
	if !f.frozen {
		panic("fs: Fork of a non-frozen filesystem")
	}
	nf := &FS{
		profile:   f.profile,
		clock:     clock,
		entropy:   entropy,
		dev:       f.dev,
		inoBase:   2 + entropy.Uint64()%1_000_000*16, // same draw as New
		inoStride: f.inoStride,
		hashSeed:  f.hashSeed,
		base:      f,
		clones:    make(map[*Inode]*Inode),
		bootStamp: clock(),
		sealEpoch: 1,
	}
	nf.nextIno = nf.inoBase + (f.nextIno - f.inoBase)
	for _, ino := range f.freeInos {
		nf.freeInos = append(nf.freeInos, nf.inoBase+(ino-f.inoBase))
	}
	nf.Root = nf.shell(f.Root)
	nf.Root.parent = nf.Root
	return nf
}

// shell returns the fork's materialized copy of base inode b, creating and
// memoizing it on first use. Memoization keeps hard links aliased: two
// directory entries that shared one base inode share one shell.
func (f *FS) shell(b *Inode) *Inode {
	if s, ok := f.clones[b]; ok {
		return s
	}
	s := &Inode{
		Ino:    f.inoBase + (b.Ino - f.base.inoBase),
		Mode:   b.Mode,
		UID:    b.UID,
		GID:    b.GID,
		Nlink:  b.Nlink,
		Atime:  f.bootStamp,
		Mtime:  f.bootStamp,
		Ctime:  f.bootStamp,
		Target: b.Target,
		DevID:  b.DevID,
		fs:     f,
	}
	switch {
	case b.IsDir():
		s.cowDir = b // entries materialize on first ents()
	case b.IsRegular():
		s.Data = b.Data // shared read-only until breakCOWData
		s.cowData = true
	case b.IsFIFO():
		// Pipes hold runtime state (buffered bytes, reader/writer counts),
		// none of which survives into an image; a fresh empty pipe is what a
		// cold Populate would have built.
		s.Pipe = NewPipe(DefaultPipeCapacity)
	}
	f.clones[b] = s
	return s
}

// ents returns the directory's entry map, materializing it from the frozen
// base on first access. All readers and writers of .entries in this package
// go through here so a fork never exposes base inode pointers.
func (n *Inode) ents() map[string]*Inode {
	if n.cowDir != nil {
		base := n.cowDir
		n.entries = make(map[string]*Inode, len(base.entries))
		for name, child := range base.entries {
			cs := n.fs.shell(child)
			if cs.parent == nil {
				cs.parent = n
			}
			n.entries[name] = cs
		}
		n.cowDir = nil
	}
	return n.entries
}

// entryCount returns the number of entries without forcing materialization,
// so stat on an untouched forked directory stays allocation-free.
func (n *Inode) entryCount() int {
	if n.cowDir != nil {
		return len(n.cowDir.entries)
	}
	return len(n.entries)
}

// breakCOWData unshares file contents from the frozen base before the first
// in-place write or truncation. Without the copy, WriteAt's copy() and
// Truncate's reslice would reach through the shared slice into the base.
func (n *Inode) breakCOWData() {
	if n.cowData {
		n.Data = append([]byte(nil), n.Data...)
		n.cowData = false
		if n.fs != nil && n.fs.OnCOWBreak != nil {
			n.fs.OnCOWBreak(int64(len(n.Data)))
		}
	}
}

// mustMutable panics on any structural mutation of a frozen template base.
func (f *FS) mustMutable() {
	if f.frozen {
		panic("fs: mutation of a frozen template base")
	}
}
