package fs

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/machine"
	"repro/internal/prng"
)

// Satellite check for ISSUE 3: the Populate → mutate → SnapshotImage →
// Populate cycle must be lossless and alias-free for every node type the
// image format can carry — symlinks, fifos, device nodes and empty
// directories included, which the pre-PR Populate mishandled (fifos fell
// into the regular-file arm and device permission bits were dropped).
func TestImageRoundTripAllNodeTypes(t *testing.T) {
	prop := func(blobs [][]byte, perms []uint8, mutSeed uint16) bool {
		im := NewImage()
		perm := func(i int) uint32 {
			if i < len(perms) {
				return uint32(perms[i])&0o777 | 0o400 // always owner-readable
			}
			return 0o644
		}
		for i, b := range blobs {
			im.AddFile(fmt.Sprintf("/files/f%d", i), perm(i), b)
		}
		im.AddDir("/empty", 0o700)
		im.AddDir("/also/empty/nested", 0o711)
		im.AddSymlink("/ln-abs", "/files/f0")
		im.AddSymlink("/ln-dangling", "/no/such/target")
		im.AddFifo("/run/queue", 0o622)
		im.AddFifo("/run/other", 0o600)
		im.AddDev("/dev/urandom", "urandom")
		im.AddDev("/dev/null", "null")

		clock := int64(0)
		f := New(machine.CloudLabC220G5(), func() int64 { clock++; return clock }, prng.NewHost(uint64(mutSeed)+1))
		f.Populate(im)

		// Mutate the live tree: the snapshot must capture the mutated state,
		// not the original image.
		ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
		if n, err := f.Resolve(ctx, "/files/f0", true); err == abi.OK {
			n.WriteAt([]byte{byte(mutSeed), byte(mutSeed >> 8)}, int64(mutSeed%5))
		}
		empty, _ := f.Resolve(ctx, "/empty", true)
		f.CreateFile(empty, "born", 0o640, 3, 4)
		if mutSeed%2 == 0 {
			run, _ := f.Resolve(ctx, "/run", true)
			f.Unlink(run, "other")
		}

		snap := f.SnapshotImage(f.Root)

		// Alias freedom: mutating the live tree after the snapshot must not
		// change the snapshot.
		if n, err := f.Resolve(ctx, "/files/f0", true); err == abi.OK {
			n.WriteAt([]byte("POST-SNAPSHOT"), 0)
		}

		// Re-populating the snapshot into a fresh FS must reproduce it
		// exactly: snapshot(populate(snapshot(x))) == snapshot(x).
		clock2 := int64(0)
		g := New(machine.PortabilityBroadwell(), func() int64 { clock2++; return clock2 }, prng.NewHost(uint64(mutSeed)+2))
		g.Populate(snap)
		back := g.SnapshotImage(g.Root)
		if !snap.Equal(back) {
			reportImageDiff(t, snap, back)
			return false
		}
		// Spot-check the types survived.
		gctx := LookupCtx{Root: g.Root, Cwd: g.Root}
		if n, err := g.Resolve(gctx, "/run/queue", true); err != abi.OK || !n.IsFIFO() || n.Pipe == nil {
			return false
		}
		if n, err := g.Resolve(gctx, "/dev/urandom", true); err != abi.OK || !n.IsDevice() || n.DevID != "urandom" {
			return false
		}
		if n, err := g.Resolve(gctx, "/ln-dangling", false); err != abi.OK || !n.IsSymlink() {
			return false
		}
		if n, err := g.Resolve(gctx, "/also/empty/nested", true); err != abi.OK || n.NumEntries() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func reportImageDiff(t *testing.T, want, got *Image) {
	t.Helper()
	for p, e := range want.Entries {
		g, ok := got.Entries[p]
		if !ok {
			t.Logf("missing %q (mode %o)", p, e.Mode)
			continue
		}
		if g.Mode != e.Mode || string(g.Data) != string(e.Data) || g.Target != e.Target || g.DevID != e.DevID {
			t.Logf("%q: want %+v got %+v", p, e, g)
		}
	}
	for p := range got.Entries {
		if _, ok := want.Entries[p]; !ok {
			t.Logf("extra %q", p)
		}
	}
}

func TestImageEqualNilVsEmptyData(t *testing.T) {
	a, b := NewImage(), NewImage()
	a.AddFile("/f", 0o644, nil)
	b.AddFile("/f", 0o644, []byte{})
	if !a.Equal(b) || !b.Equal(a) {
		t.Errorf("nil and empty file bodies should compare equal")
	}
	if a.Hash() != b.Hash() {
		t.Errorf("nil and empty file bodies should hash equal")
	}
}

func TestImageHashDiscriminates(t *testing.T) {
	base := templateImage()
	h := base.Hash()
	if h != templateImage().Hash() {
		t.Fatalf("hash not deterministic")
	}
	variants := []func(*Image){
		func(im *Image) { im.AddFile("/extra", 0o644, nil) },
		func(im *Image) { im.AddFile("/bin/cc", 0o755, []byte("#!CC")) },
		func(im *Image) { im.AddFile("/bin/cc", 0o750, []byte("#!cc")) },
		func(im *Image) { im.AddSymlink("/usr/bin/cc", "/bin/ld") },
		func(im *Image) { im.AddDev("/dev/urandom", "other") },
		func(im *Image) { delete(im.Entries, "/empty") },
	}
	for i, mut := range variants {
		im := templateImage()
		mut(im)
		if im.Hash() == h {
			t.Errorf("variant %d collides with the base hash", i)
		}
	}
}
