package fs

import (
	"bytes"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/derive"
)

// Image is a portable description of a filesystem tree — the "initial
// filesystem state" that a DetTrace computation is a pure function of
// (Fig. 1). Images are instantiated into a live FS per simulated run, which
// models how reprotest copies a pristine control-chroot before every build:
// paths, contents and permission bits carry over; inode numbers and
// timestamps are assigned by the host at copy time.
type Image struct {
	Entries map[string]ImageEntry
}

// ImageEntry is one node in an Image.
type ImageEntry struct {
	Mode   uint32 // full S_IF | perm bits
	Data   []byte // regular files
	Target string // symlinks
	DevID  string // character devices
	UID    uint32
	GID    uint32
}

// NewImage returns an empty image.
func NewImage() *Image { return &Image{Entries: make(map[string]ImageEntry)} }

// AddDir records a directory (and implicitly its parents).
func (im *Image) AddDir(path string, perm uint32) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeDir | perm}
}

// AddFile records a regular file.
func (im *Image) AddFile(path string, perm uint32, data []byte) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeRegular | perm, Data: data}
}

// AddSymlink records a symbolic link.
func (im *Image) AddSymlink(path, target string) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeSymlink | 0o777, Target: target}
}

// AddDev records a character device resolved by the kernel at open time.
func (im *Image) AddDev(path, devID string) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeCharDev | 0o666, DevID: devID}
}

// AddFifo records a named pipe.
func (im *Image) AddFifo(path string, perm uint32) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeFIFO | perm}
}

// Equal reports whether two images describe the same tree. A nil and an
// empty file body are the same file, matching what Populate instantiates.
func (im *Image) Equal(other *Image) bool {
	if len(im.Entries) != len(other.Entries) {
		return false
	}
	for p, e := range im.Entries {
		o, ok := other.Entries[p]
		if !ok {
			return false
		}
		if e.Mode != o.Mode || e.UID != o.UID || e.GID != o.GID ||
			e.Target != o.Target || e.DevID != o.DevID || !bytes.Equal(e.Data, o.Data) {
			return false
		}
	}
	return true
}

// LeafHash returns the content hash of one entry: its type and permission
// bits, ownership, file body, link target and device identity. One file's
// leaf is the per-file granule the incremental-rebuild planner diffs — a
// one-byte patch moves exactly one leaf.
func (e ImageEntry) LeafHash() uint64 {
	h := derive.NewHasher()
	h.Num(uint64(e.Mode))
	h.Num(uint64(e.UID))
	h.Num(uint64(e.GID))
	h.Data(e.Data)
	h.Str(e.Target)
	h.Str(e.DevID)
	return h.Sum()
}

// TreeHash returns the Merkle-style tree hash of the image: one leaf per
// path plus the root fold over the sorted (path, leaf) pairs. The root is
// the image's content address; the leaves feed derive.PlanRebuild's tree
// diff.
func (im *Image) TreeHash() derive.TreeHash {
	leaves := make(map[string]uint64, len(im.Entries))
	for p, e := range im.Entries {
		leaves[p] = e.LeafHash()
	}
	return derive.TreeHash{Root: derive.FoldLeaves(leaves), Leaves: leaves}
}

// Hash returns the content hash of the image — the root of TreeHash. Two
// images with Equal contents hash identically; every cache layer keys on
// this through derive.KeyFor, per ISSUE 3's "keyed by image content hash"
// and ISSUE 8's unified derivation keys.
func (im *Image) Hash() uint64 {
	leaves := make(map[string]uint64, len(im.Entries))
	for p, e := range im.Entries {
		leaves[p] = e.LeafHash()
	}
	return derive.FoldLeaves(leaves)
}

// Clone returns a deep copy, so experiment images can be derived from a
// control image without aliasing (the control/experiment chroot split of
// §6.1).
func (im *Image) Clone() *Image {
	out := NewImage()
	for p, e := range im.Entries {
		if e.Data != nil {
			e.Data = append([]byte(nil), e.Data...)
		}
		out.Entries[p] = e
	}
	return out
}

// Paths returns every recorded path in sorted order.
func (im *Image) Paths() []string {
	ps := make([]string, 0, len(im.Entries))
	for p := range im.Entries {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return strings.TrimSuffix(p, "/")
}

// Populate instantiates the image under the root of f. Missing parent
// directories are created with mode 0755. Inode numbers and timestamps are
// whatever the live filesystem hands out — per-boot values, not image
// properties.
func (f *FS) Populate(im *Image) {
	for _, p := range im.Paths() {
		e := im.Entries[p]
		dir := f.ensureDirs(parentOf(p))
		name := baseOf(p)
		if name == "" {
			continue // the root itself
		}
		switch e.Mode & abi.ModeTypeMask {
		case abi.ModeDir:
			if existing, ok := dir.ents()[name]; ok && existing.IsDir() {
				existing.Mode = e.Mode
				continue
			}
			n, _ := f.Mkdir(dir, name, e.Mode, e.UID, e.GID)
			if n != nil {
				n.Mode = e.Mode
			}
		case abi.ModeSymlink:
			f.Symlink(dir, name, e.Target, e.UID, e.GID)
		case abi.ModeCharDev:
			n, err := f.Mkdev(dir, name, e.DevID, e.UID, e.GID)
			if err == abi.OK {
				n.Mode = e.Mode // preserve recorded device permissions
			}
		case abi.ModeFIFO:
			n, err := f.Mkfifo(dir, name, e.Mode&abi.ModePermMask, e.UID, e.GID)
			if err == abi.OK {
				n.Mode = e.Mode
			}
		default:
			n, err := f.CreateFile(dir, name, e.Mode&abi.ModePermMask, e.UID, e.GID)
			if err == abi.OK {
				n.Data = append([]byte(nil), e.Data...)
				n.Mode = e.Mode
			}
		}
	}
}

func (f *FS) ensureDirs(path string) *Inode {
	cur := f.Root
	for _, c := range splitPath(path) {
		next, ok := cur.ents()[c]
		if !ok {
			next, _ = f.Mkdir(cur, c, 0o755, 0, 0)
		}
		cur = next
	}
	return cur
}

func parentOf(p string) string {
	i := strings.LastIndex(p, "/")
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func baseOf(p string) string {
	i := strings.LastIndex(p, "/")
	return p[i+1:]
}

// SnapshotImage captures the subtree at root back into an Image — the
// inverse of Populate, used to compare end-of-build filesystem states.
func (f *FS) SnapshotImage(root *Inode) *Image {
	im := NewImage()
	f.Walk(root, func(path string, n *Inode) {
		if path == "/" {
			return
		}
		e := ImageEntry{Mode: n.Mode, UID: n.UID, GID: n.GID}
		switch {
		case n.IsRegular():
			e.Data = append([]byte(nil), n.Data...)
		case n.IsSymlink():
			e.Target = n.Target
		case n.IsDevice():
			e.DevID = n.DevID
		}
		im.Entries[path] = e
	})
	return im
}
