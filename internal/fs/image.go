package fs

import (
	"bytes"
	"encoding/binary"
	"sort"
	"strings"

	"repro/internal/abi"
)

// Image is a portable description of a filesystem tree — the "initial
// filesystem state" that a DetTrace computation is a pure function of
// (Fig. 1). Images are instantiated into a live FS per simulated run, which
// models how reprotest copies a pristine control-chroot before every build:
// paths, contents and permission bits carry over; inode numbers and
// timestamps are assigned by the host at copy time.
type Image struct {
	Entries map[string]ImageEntry
}

// ImageEntry is one node in an Image.
type ImageEntry struct {
	Mode   uint32 // full S_IF | perm bits
	Data   []byte // regular files
	Target string // symlinks
	DevID  string // character devices
	UID    uint32
	GID    uint32
}

// NewImage returns an empty image.
func NewImage() *Image { return &Image{Entries: make(map[string]ImageEntry)} }

// AddDir records a directory (and implicitly its parents).
func (im *Image) AddDir(path string, perm uint32) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeDir | perm}
}

// AddFile records a regular file.
func (im *Image) AddFile(path string, perm uint32, data []byte) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeRegular | perm, Data: data}
}

// AddSymlink records a symbolic link.
func (im *Image) AddSymlink(path, target string) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeSymlink | 0o777, Target: target}
}

// AddDev records a character device resolved by the kernel at open time.
func (im *Image) AddDev(path, devID string) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeCharDev | 0o666, DevID: devID}
}

// AddFifo records a named pipe.
func (im *Image) AddFifo(path string, perm uint32) {
	im.Entries[clean(path)] = ImageEntry{Mode: abi.ModeFIFO | perm}
}

// Equal reports whether two images describe the same tree. A nil and an
// empty file body are the same file, matching what Populate instantiates.
func (im *Image) Equal(other *Image) bool {
	if len(im.Entries) != len(other.Entries) {
		return false
	}
	for p, e := range im.Entries {
		o, ok := other.Entries[p]
		if !ok {
			return false
		}
		if e.Mode != o.Mode || e.UID != o.UID || e.GID != o.GID ||
			e.Target != o.Target || e.DevID != o.DevID || !bytes.Equal(e.Data, o.Data) {
			return false
		}
	}
	return true
}

// Hash returns a content hash of the image: FNV-1a over the sorted paths
// and their length-prefixed entry fields. Two images with Equal contents
// hash identically; the template cache (internal/buildsim) uses this as its
// key, per ISSUE 3's "keyed by image content hash".
func (im *Image) Hash() uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
	}
	var buf [8]byte
	num := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		mix(buf[:])
	}
	str := func(s string) {
		num(uint64(len(s)))
		mix([]byte(s))
	}
	for _, p := range im.Paths() {
		e := im.Entries[p]
		str(p)
		num(uint64(e.Mode))
		num(uint64(e.UID))
		num(uint64(e.GID))
		num(uint64(len(e.Data)))
		mix(e.Data)
		str(e.Target)
		str(e.DevID)
	}
	return h
}

// Clone returns a deep copy, so experiment images can be derived from a
// control image without aliasing (the control/experiment chroot split of
// §6.1).
func (im *Image) Clone() *Image {
	out := NewImage()
	for p, e := range im.Entries {
		if e.Data != nil {
			e.Data = append([]byte(nil), e.Data...)
		}
		out.Entries[p] = e
	}
	return out
}

// Paths returns every recorded path in sorted order.
func (im *Image) Paths() []string {
	ps := make([]string, 0, len(im.Entries))
	for p := range im.Entries {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return strings.TrimSuffix(p, "/")
}

// Populate instantiates the image under the root of f. Missing parent
// directories are created with mode 0755. Inode numbers and timestamps are
// whatever the live filesystem hands out — per-boot values, not image
// properties.
func (f *FS) Populate(im *Image) {
	for _, p := range im.Paths() {
		e := im.Entries[p]
		dir := f.ensureDirs(parentOf(p))
		name := baseOf(p)
		if name == "" {
			continue // the root itself
		}
		switch e.Mode & abi.ModeTypeMask {
		case abi.ModeDir:
			if existing, ok := dir.ents()[name]; ok && existing.IsDir() {
				existing.Mode = e.Mode
				continue
			}
			n, _ := f.Mkdir(dir, name, e.Mode, e.UID, e.GID)
			if n != nil {
				n.Mode = e.Mode
			}
		case abi.ModeSymlink:
			f.Symlink(dir, name, e.Target, e.UID, e.GID)
		case abi.ModeCharDev:
			n, err := f.Mkdev(dir, name, e.DevID, e.UID, e.GID)
			if err == abi.OK {
				n.Mode = e.Mode // preserve recorded device permissions
			}
		case abi.ModeFIFO:
			n, err := f.Mkfifo(dir, name, e.Mode&abi.ModePermMask, e.UID, e.GID)
			if err == abi.OK {
				n.Mode = e.Mode
			}
		default:
			n, err := f.CreateFile(dir, name, e.Mode&abi.ModePermMask, e.UID, e.GID)
			if err == abi.OK {
				n.Data = append([]byte(nil), e.Data...)
				n.Mode = e.Mode
			}
		}
	}
}

func (f *FS) ensureDirs(path string) *Inode {
	cur := f.Root
	for _, c := range splitPath(path) {
		next, ok := cur.ents()[c]
		if !ok {
			next, _ = f.Mkdir(cur, c, 0o755, 0, 0)
		}
		cur = next
	}
	return cur
}

func parentOf(p string) string {
	i := strings.LastIndex(p, "/")
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func baseOf(p string) string {
	i := strings.LastIndex(p, "/")
	return p[i+1:]
}

// SnapshotImage captures the subtree at root back into an Image — the
// inverse of Populate, used to compare end-of-build filesystem states.
func (f *FS) SnapshotImage(root *Inode) *Image {
	im := NewImage()
	f.Walk(root, func(path string, n *Inode) {
		if path == "/" {
			return
		}
		e := ImageEntry{Mode: n.Mode, UID: n.UID, GID: n.GID}
		switch {
		case n.IsRegular():
			e.Data = append([]byte(nil), n.Data...)
		case n.IsSymlink():
			e.Target = n.Target
		case n.IsDevice():
			e.DevID = n.DevID
		}
		im.Entries[path] = e
	})
	return im
}
