package fs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/abi"
	"repro/internal/machine"
	"repro/internal/prng"
)

// wsTestFS builds a small live filesystem with a fixed clock and entropy.
func wsTestFS(t *testing.T) *FS {
	t.Helper()
	clock := func() int64 { return 1_000_000 }
	f := New(machine.CloudLabC220G5(), clock, prng.NewHost(42))
	ctx := LookupCtx{Root: f.Root, Cwd: f.Root}
	dir, name, err := f.ResolveParent(ctx, "/out")
	if err != abi.OK {
		t.Fatalf("resolve /out: %v", err)
	}
	if _, err := f.Mkdir(dir, name, 0o755, 0, 0); err != abi.OK {
		t.Fatalf("mkdir /out: %v", err)
	}
	n, err := f.CreateFile(f.Root, "seed.txt", 0o644, 0, 0)
	if err != abi.OK {
		t.Fatalf("create seed.txt: %v", err)
	}
	n.WriteAt([]byte("seed"), 0)
	return f
}

// imageBytes serializes the tree deterministically for bitwise comparison.
func imageBytes(f *FS) []byte {
	var buf bytes.Buffer
	f.Walk(f.Root, func(path string, n *Inode) {
		fmt.Fprintf(&buf, "%s|%o|%d|%d|%q\n", path, n.Mode, n.Ino, n.Mtime, n.Data)
	})
	return buf.Bytes()
}

// buildWorkspaces forks three workspaces off f and journals a mixed op set:
// disjoint writes, a same-path write resolved by rank, a mkdir, a remove.
func buildWorkspaces(t *testing.T, f *FS) []*Workspace {
	t.Helper()
	w0 := f.ForkWorkspace(0)
	w1 := f.ForkWorkspace(1)
	w2 := f.ForkWorkspace(2)
	must := func(e abi.Errno) {
		t.Helper()
		if e != abi.OK {
			t.Fatalf("workspace op: %v", e)
		}
	}
	must(w0.WriteFile("/out/a.txt", []byte("from w0"), 100))
	must(w0.Mkdir("/out/w0dir", 110))
	must(w0.WriteFile("/out/w0dir/nested", []byte("deep"), 120))
	must(w1.WriteFile("/out/b.txt", []byte("from w1"), 105))
	must(w1.WriteFile("/out/shared", []byte("w1 early"), 90))
	must(w2.WriteFile("/out/shared", []byte("w2 late"), 130)) // higher rank wins
	must(w2.Remove("/seed.txt", 140))
	return []*Workspace{w0, w1, w2}
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

// TestWorkspaceMergePermutationProperty is the satellite-3 property test:
// merging the same workspace set in every permutation of host completion
// order must yield byte-identical filesystem images and equal merge digests.
func TestWorkspaceMergePermutationProperty(t *testing.T) {
	var refImage []byte
	var refDigest uint64
	var refApplied int
	for pi, perm := range permutations(3) {
		f := wsTestFS(t)
		wss := buildWorkspaces(t, f)
		shuffled := make([]*Workspace, len(wss))
		for i, j := range perm {
			shuffled[i] = wss[j]
		}
		stats, err := MergeWorkspaces(shuffled)
		if err != nil {
			t.Fatalf("perm %v: merge failed: %v", perm, err)
		}
		if f.Outstanding() != 0 {
			t.Fatalf("perm %v: %d workspaces still outstanding", perm, f.Outstanding())
		}
		img := imageBytes(f)
		if pi == 0 {
			refImage, refDigest, refApplied = img, stats.Digest, stats.Applied
			continue
		}
		if stats.Digest != refDigest {
			t.Errorf("perm %v: digest %#x != %#x", perm, stats.Digest, refDigest)
		}
		if stats.Applied != refApplied {
			t.Errorf("perm %v: applied %d != %d", perm, stats.Applied, refApplied)
		}
		if !bytes.Equal(img, refImage) {
			t.Errorf("perm %v: merged image differs from reference", perm)
		}
	}
}

// TestWorkspaceMergeRankWriteWins pins the write-wins rule: the higher
// logical rank's content lands on the base regardless of vTID order.
func TestWorkspaceMergeRankWriteWins(t *testing.T) {
	f := wsTestFS(t)
	w0 := f.ForkWorkspace(0)
	w1 := f.ForkWorkspace(1)
	w0.WriteFile("/out/x", []byte("low rank, low vtid"), 50)
	w1.WriteFile("/out/x", []byte("high rank"), 60)
	if _, err := MergeWorkspaces([]*Workspace{w0, w1}); err != nil {
		t.Fatalf("merge: %v", err)
	}
	n, errno := f.Resolve(LookupCtx{Root: f.Root, Cwd: f.Root}, "/out/x", true)
	if errno != abi.OK {
		t.Fatalf("resolve /out/x: %v", errno)
	}
	if string(n.Data) != "high rank" {
		t.Fatalf("winner = %q, want %q", n.Data, "high rank")
	}
}

// TestWorkspaceMergeConflictDeterministic pins conflict semantics: equal
// rank, different effects → *MergeConflictError naming the path and both
// vTIDs in ascending order, identically for every host completion order.
func TestWorkspaceMergeConflictDeterministic(t *testing.T) {
	build := func() []*Workspace {
		f := wsTestFS(t)
		w0 := f.ForkWorkspace(0)
		w1 := f.ForkWorkspace(1)
		w0.WriteFile("/out/c", []byte("A"), 77)
		w1.WriteFile("/out/c", []byte("B"), 77)
		return []*Workspace{w0, w1}
	}
	for _, order := range [][]int{{0, 1}, {1, 0}} {
		wss := build()
		shuffled := []*Workspace{wss[order[0]], wss[order[1]]}
		stats, err := MergeWorkspaces(shuffled)
		mc, ok := err.(*MergeConflictError)
		if !ok {
			t.Fatalf("order %v: err = %v, want *MergeConflictError", order, err)
		}
		if mc.Path != "/out/c" || mc.VTIDs != [2]int{0, 1} {
			t.Fatalf("order %v: conflict = %+v", order, mc)
		}
		if stats.Conflicts != 1 {
			t.Fatalf("order %v: conflicts = %d, want 1", order, stats.Conflicts)
		}
	}
}

// TestWorkspaceIdenticalEffectsNoConflict pins that an exact tie with the
// same bytes is not a conflict — both threads derived the same value.
func TestWorkspaceIdenticalEffectsNoConflict(t *testing.T) {
	f := wsTestFS(t)
	w0 := f.ForkWorkspace(0)
	w1 := f.ForkWorkspace(1)
	w0.WriteFile("/out/same", []byte("agreed"), 88)
	w1.WriteFile("/out/same", []byte("agreed"), 88)
	stats, err := MergeWorkspaces([]*Workspace{w0, w1})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if stats.Conflicts != 0 || stats.Applied != 1 {
		t.Fatalf("stats = %+v, want 0 conflicts, 1 applied", stats)
	}
}

// TestWorkspaceForkDrawsNoEntropy pins the invisibility contract: forking
// and discarding workspaces must not consume host entropy or bump clocks.
func TestWorkspaceForkDrawsNoEntropy(t *testing.T) {
	ent := prng.NewHost(7)
	f := New(machine.CloudLabC220G5(), func() int64 { return 5 }, ent)
	before := ent.Uint64()
	ent2 := prng.NewHost(7)
	f2 := New(machine.CloudLabC220G5(), func() int64 { return 5 }, ent2)
	w := f2.ForkWorkspace(0)
	w.Discard()
	_ = f
	after := ent2.Uint64()
	if before != after {
		t.Fatalf("workspace fork consumed entropy: %#x != %#x", before, after)
	}
}

// TestWorkspaceReadsOverlayThenBase pins the read path: a workspace sees its
// own writes, then the live base, and removals hide base files.
func TestWorkspaceReadsOverlayThenBase(t *testing.T) {
	f := wsTestFS(t)
	w := f.ForkWorkspace(0)
	if got, errno := w.ReadFile("/seed.txt"); errno != abi.OK || string(got) != "seed" {
		t.Fatalf("base read = %q, %v", got, errno)
	}
	w.WriteFile("/seed.txt", []byte("mine"), 10)
	if got, _ := w.ReadFile("/seed.txt"); string(got) != "mine" {
		t.Fatalf("overlay read = %q, want %q", got, "mine")
	}
	w.Remove("/seed.txt", 20)
	if _, errno := w.ReadFile("/seed.txt"); errno != abi.ENOENT {
		t.Fatalf("removed read errno = %v, want ENOENT", errno)
	}
	// The base is untouched until merge.
	n, errno := f.Resolve(LookupCtx{Root: f.Root, Cwd: f.Root}, "/seed.txt", true)
	if errno != abi.OK || string(n.Data) != "seed" {
		t.Fatalf("base mutated before merge: %v %q", errno, n.Data)
	}
	w.Discard()
}
