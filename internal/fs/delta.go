package fs

import (
	"sort"

	"repro/internal/derive"
	"repro/internal/prng"
)

// This file implements delta checkpoint seals (ISSUE 9). A full seal
// (checkpoint.go) deep-copies the whole tree, which makes dense per-unit
// checkpointing cost O(filesystem) per seal. A delta seal instead shares
// every subtree that is provably unchanged since the previous seal and
// freshly clones only what was dirtied — the same structural-sharing idea as
// the COW fork machinery, applied between consecutive seals of one run.
//
// Sharing soundness. A live inode n may share the previous seal's clone pc
// iff a fresh identity clone of n would be byte-identical to pc:
//
//   - regular files: identical metadata, identical cowData flag, and Data
//     unchanged since the previous seal. Data dirtiness is tracked by
//     Inode.dataEpoch (stamped by WriteAt/Truncate/Amend against the owning
//     filesystem's sealEpoch), because WriteAt mutates the slice in place —
//     slice identity proves nothing. A file whose metadata changed but whose
//     data is clean gets a fresh inode that aliases pc's immutable Data copy
//     instead of re-copying it.
//   - directories: identical metadata, the same entry-name set, and every
//     child resolving to exactly the clone pc holds for that name. The
//     child-pointer comparison is what catches BindMount (which touches no
//     timestamps) and Rename entry moves.
//   - FIFOs: identical metadata and identical pipe runtime state.
//   - symlinks/devices: identical metadata, Target and DevID.
//
// Shared inodes keep their parent pointers into the older seal's tree. That
// is harmless: Walk never consults parent, path resolution inside a frozen
// seal starts at the chain head's root, and Resume re-clones everything with
// fresh parents.
//
// Chain integrity. Every seal stores a content digest; a delta seal's digest
// folds its base's digest first, so Valid()/ChainValid() detect a corrupted
// link anywhere in the chain, and recovery steps down to the nearest prefix
// whose links all validate. Reconstitute folds a delta chain back into one
// standalone full seal — the validator that pins delta restores bitwise-equal
// to full-seal restores.

// Seal is one immutable checkpoint of a filesystem: a frozen tree plus the
// delta-chain link to the seal it shares structure with (nil for a full
// seal).
type Seal struct {
	tree   *FS
	base   *Seal
	stats  SealStats
	digest uint64
}

// SealStats describes the cost of one seal.
type SealStats struct {
	Delta      bool  // sealed as a delta against a previous seal
	Nodes      int   // unique inodes reachable from the seal's root
	Fresh      int   // inodes newly cloned for this seal
	Shared     int   // inodes shared with the previous seal's tree
	FreshBytes int64 // file bytes copied for this seal (the marginal cost)
	TotalBytes int64 // file bytes reachable from the root (the full-seal cost)
}

// sealDigestSeed starts every seal digest so an empty tree still hashes to a
// recognizable non-zero value.
const sealDigestSeed uint64 = 0x9e3779b97f4a7c15

// sealSharedMark distinguishes a "shared with base" fold from a fresh one.
const sealSharedMark uint64 = 0x51ab51ab

// SealCheckpoint seals the current filesystem state. With delta set and a
// previous seal on record, the new seal shares every clean subtree with it;
// otherwise (first seal of the run, or the DisableDeltaSeals ablation) the
// seal is a standalone deep copy. Either way the live filesystem rolls into
// a new seal epoch afterwards.
func (f *FS) SealCheckpoint(delta bool) *Seal {
	s := &Seal{}
	memo := make(map[*Inode]*Inode)
	if delta && f.lastSeal != nil && f.lastSealMemo != nil {
		s.base = f.lastSeal
		s.stats.Delta = true
	}
	s.tree = f.cloneFSHeader(nil, nil)
	s.tree.frozen = true
	s.tree.Root = sealClone(f.Root, s.tree, memo, f.lastSealMemoIfDelta(s), f.sealEpoch, &s.stats)
	if s.tree.Root.parent == nil {
		s.tree.Root.parent = s.tree.Root
	}
	s.fillTotals()
	s.digest = s.computeDigest()
	f.lastSeal = s
	f.lastSealMemo = memo
	f.sealEpoch++
	return s
}

// lastSealMemoIfDelta returns the previous seal's live→clone memo when s is
// a delta, nil otherwise (nil prevMemo makes sealClone clone everything).
func (f *FS) lastSealMemoIfDelta(s *Seal) map[*Inode]*Inode {
	if s.base != nil {
		return f.lastSealMemo
	}
	return nil
}

// Tree returns the sealed filesystem tree (read-only).
func (s *Seal) Tree() *FS { return s.tree }

// Base returns the seal this delta chains to, nil for a full seal.
func (s *Seal) Base() *Seal { return s.base }

// Stats returns the seal's cost accounting.
func (s *Seal) Stats() SealStats { return s.stats }

// Digest returns the seal's content digest (chained through base digests).
func (s *Seal) Digest() uint64 { return s.digest }

// Corrupt flips a bit in the stored digest — the deterministic storage-fault
// hook behind FaultCorruptCheckpoint.
func (s *Seal) Corrupt() { s.digest ^= 1 }

// Valid recomputes the content digest and compares it to the stored one.
func (s *Seal) Valid() bool { return s.computeDigest() == s.digest }

// ChainValid reports whether this seal and every seal it chains to validate.
func (s *Seal) ChainValid() bool {
	for cur := s; cur != nil; cur = cur.base {
		if !cur.Valid() {
			return false
		}
	}
	return true
}

// Resume builds a fresh mutable filesystem from the seal, bound to the
// resumed kernel's clock and entropy pool. The seal is left untouched, so
// one checkpoint can serve bounded retries. The resumed filesystem records
// this seal as its previous one, so its own later delta seals chain here —
// exactly as the uninterrupted run's would.
func (s *Seal) Resume(clock Clock, entropy *prng.Host) *FS {
	memo := make(map[*Inode]*Inode)
	nf := s.tree.deepClone(clock, entropy, memo)
	nf.lastSeal = s
	nf.lastSealMemo = make(map[*Inode]*Inode, len(memo))
	for src, clone := range memo {
		nf.lastSealMemo[clone] = src
	}
	return nf
}

// Reconstitute folds the delta chain into one standalone full seal: a deep
// copy of everything reachable from this seal's root, with no base link.
// Restoring the reconstituted seal must be bitwise-identical to restoring
// the chained one — the delta-chain correctness oracle.
func (s *Seal) Reconstitute() *Seal {
	memo := make(map[*Inode]*Inode)
	full := &Seal{tree: s.tree.deepClone(nil, nil, memo)}
	full.tree.frozen = true
	full.stats.Fresh = len(memo)
	full.fillTotals()
	full.stats.FreshBytes = full.stats.TotalBytes
	full.digest = full.computeDigest()
	return full
}

// sealClone clones inode n into the seal tree nf, sharing against prevMemo
// (the previous seal's live→clone mapping; nil forces a full clone). epoch
// is the sealing filesystem's current sealEpoch: data stamped below it is
// clean. Children are cloned before their directory so the directory share
// check can compare resolved child pointers. Directories have no cycles and
// hard links never link directories, so post-order recursion terminates.
func sealClone(n *Inode, nf *FS, memo, prevMemo map[*Inode]*Inode, epoch uint64, st *SealStats) *Inode {
	if c, ok := memo[n]; ok {
		return c
	}
	var pc *Inode
	if prevMemo != nil {
		pc = prevMemo[n]
	}

	if n.IsDir() {
		ents := n.ents() // materialize any deferred fork map; invisible to the source
		kids := make(map[string]*Inode, len(ents))
		for name, child := range ents {
			kids[name] = sealClone(child, nf, memo, prevMemo, epoch, st)
		}
		if pc != nil && metaEqual(n, pc) && len(pc.entries) == len(kids) {
			same := true
			for name, kc := range kids {
				if pc.entries[name] != kc {
					same = false
					break
				}
			}
			if same {
				st.Shared++
				memo[n] = pc
				return pc
			}
		}
		c := freshMetaClone(n, nf)
		c.entries = kids
		for _, kc := range kids {
			if kc.parent == nil {
				kc.parent = c
			}
		}
		st.Fresh++
		memo[n] = c
		return c
	}

	if n.IsRegular() {
		dataClean := n.dataEpoch < epoch
		if pc != nil && pc.IsRegular() && metaEqual(n, pc) && n.cowData == pc.cowData && dataClean {
			st.Shared++
			memo[n] = pc
			return pc
		}
		c := freshMetaClone(n, nf)
		switch {
		case n.cowData:
			// Shared read-only with an immutable frozen base: alias it and
			// keep the flag, so the resumed run breaks COW (and records the
			// break) at exactly the writes the uninterrupted run would.
			c.Data = n.Data
			c.cowData = true
		case dataClean && pc != nil && pc.IsRegular() && !pc.cowData:
			// Metadata changed, contents did not: alias the previous seal's
			// immutable copy instead of re-copying the bytes.
			c.Data = pc.Data
		default:
			c.Data = append([]byte(nil), n.Data...)
			st.FreshBytes += int64(len(c.Data))
		}
		st.Fresh++
		memo[n] = c
		return c
	}

	if n.IsFIFO() {
		if pc != nil && pc.IsFIFO() && metaEqual(n, pc) && pipeStateEqual(n.Pipe, pc.Pipe) {
			st.Shared++
			memo[n] = pc
			return pc
		}
		c := freshMetaClone(n, nf)
		c.Pipe = n.Pipe.cloneState()
		if c.Pipe != nil {
			st.FreshBytes += int64(len(c.Pipe.buf))
		}
		st.Fresh++
		memo[n] = c
		return c
	}

	// Symlinks and character devices: metadata plus Target/DevID, both
	// copied by freshMetaClone.
	if pc != nil && metaEqual(n, pc) && n.Target == pc.Target && n.DevID == pc.DevID {
		st.Shared++
		memo[n] = pc
		return pc
	}
	c := freshMetaClone(n, nf)
	st.Fresh++
	memo[n] = c
	return c
}

// freshMetaClone copies the identity metadata of n into a new inode owned by
// the seal tree.
func freshMetaClone(n *Inode, nf *FS) *Inode {
	return &Inode{
		Ino: n.Ino, Mode: n.Mode, UID: n.UID, GID: n.GID, Nlink: n.Nlink,
		Atime: n.Atime, Mtime: n.Mtime, Ctime: n.Ctime,
		Target: n.Target, DevID: n.DevID,
		fs: nf,
	}
}

// metaEqual compares the identity metadata the seal must preserve verbatim.
func metaEqual(a, b *Inode) bool {
	return a.Ino == b.Ino && a.Mode == b.Mode && a.UID == b.UID && a.GID == b.GID &&
		a.Nlink == b.Nlink && a.Atime == b.Atime && a.Mtime == b.Mtime && a.Ctime == b.Ctime
}

// pipeStateEqual compares the runtime state a FIFO seal must preserve.
func pipeStateEqual(a, b *Pipe) bool {
	if a == nil || b == nil {
		return a == b
	}
	return string(a.buf) == string(b.buf) && a.capacity == b.capacity &&
		a.readers == b.readers && a.writers == b.writers
}

// fillTotals walks the seal tree counting unique inodes and reachable file
// bytes (regular Data plus pipe buffers).
func (s *Seal) fillTotals() {
	seen := make(map[*Inode]bool)
	var rec func(n *Inode)
	rec = func(n *Inode) {
		if seen[n] {
			return
		}
		seen[n] = true
		s.stats.Nodes++
		switch {
		case n.IsRegular():
			s.stats.TotalBytes += int64(len(n.Data))
		case n.IsFIFO():
			if n.Pipe != nil {
				s.stats.TotalBytes += int64(len(n.Pipe.buf))
			}
		case n.IsDir():
			for _, child := range n.entries {
				rec(child)
			}
		}
	}
	rec(s.tree.Root)
}

// computeDigest folds the seal's content into one value. Fresh nodes fold
// their full observable state; nodes shared with the base seal fold only an
// identity marker — their content is covered by the base's digest, which is
// folded in first. Allocator state is included because a resumed run's inode
// numbering depends on it.
func (s *Seal) computeDigest() uint64 {
	h := derive.DigestU64(0, sealDigestSeed)
	if s.base != nil {
		h = derive.DigestU64(h, s.base.digest)
	}
	h = derive.DigestU64(h, s.tree.dev, s.tree.inoBase, s.tree.nextIno,
		s.tree.inoStride, uint64(len(s.tree.freeInos)))
	for _, ino := range s.tree.freeInos {
		h = derive.DigestU64(h, ino)
	}
	return s.foldNode(h, "/", s.tree.Root)
}

func (s *Seal) foldNode(h uint64, name string, n *Inode) uint64 {
	h = derive.DigestU64(h, derive.DigestBytes([]byte(name)))
	if n.fs != s.tree {
		// Shared with an ancestor seal: content covered by the base digest.
		return derive.DigestU64(h, n.Ino, sealSharedMark)
	}
	h = derive.DigestU64(h, n.Ino, uint64(n.Mode), uint64(n.UID), uint64(n.GID), uint64(n.Nlink))
	h = derive.DigestU64(h, uint64(n.Atime), uint64(n.Mtime), uint64(n.Ctime))
	h = derive.DigestU64(h, derive.DigestBytes([]byte(n.Target)), derive.DigestBytes([]byte(n.DevID)))
	switch {
	case n.IsRegular():
		flag := uint64(0)
		if n.cowData {
			flag = 1
		}
		h = derive.DigestU64(h, flag, derive.DigestBytes(n.Data))
	case n.IsFIFO():
		if n.Pipe != nil {
			h = derive.DigestU64(h, derive.DigestBytes(n.Pipe.buf),
				uint64(n.Pipe.capacity), uint64(n.Pipe.readers), uint64(n.Pipe.writers))
		}
	case n.IsDir():
		names := make([]string, 0, len(n.entries))
		for name := range n.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h = s.foldNode(h, name, n.entries[name])
		}
	}
	return h
}
