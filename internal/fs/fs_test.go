package fs

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/machine"
	"repro/internal/prng"
)

func newFS() *FS {
	clock := int64(1_000_000_000_000)
	return New(machine.CloudLabC220G5(), func() int64 { clock += 1e6; return clock }, prng.NewHost(42))
}

func rootCtx(f *FS) LookupCtx { return LookupCtx{Root: f.Root, Cwd: f.Root} }

func mustCreate(t *testing.T, f *FS, dir *Inode, name string) *Inode {
	t.Helper()
	n, err := f.CreateFile(dir, name, 0o644, 0, 0)
	if err != abi.OK {
		t.Fatalf("create %s: %v", name, err)
	}
	return n
}

func mustMkdir(t *testing.T, f *FS, dir *Inode, name string) *Inode {
	t.Helper()
	n, err := f.Mkdir(dir, name, 0o755, 0, 0)
	if err != abi.OK {
		t.Fatalf("mkdir %s: %v", name, err)
	}
	return n
}

func TestResolveBasics(t *testing.T) {
	f := newFS()
	a := mustMkdir(t, f, f.Root, "a")
	b := mustMkdir(t, f, a, "b")
	file := mustCreate(t, f, b, "f.txt")

	cases := []struct {
		path string
		want *Inode
	}{
		{"/a/b/f.txt", file},
		{"a/b/f.txt", file},
		{"/a/./b/../b/f.txt", file},
		{"/a/b/..", a},
		{"/..", f.Root},
		{"/../../..", f.Root}, // cannot escape the root
		{"/", f.Root},
	}
	for _, c := range cases {
		got, err := f.Resolve(rootCtx(f), c.path, true)
		if err != abi.OK || got != c.want {
			t.Errorf("Resolve(%q) = %v, %v", c.path, got, err)
		}
	}
	if _, err := f.Resolve(rootCtx(f), "/a/missing", true); err != abi.ENOENT {
		t.Errorf("missing path: %v, want ENOENT", err)
	}
	if _, err := f.Resolve(rootCtx(f), "/a/b/f.txt/x", true); err != abi.ENOTDIR {
		t.Errorf("file-as-dir: %v, want ENOTDIR", err)
	}
}

func TestChrootConfinement(t *testing.T) {
	f := newFS()
	jail := mustMkdir(t, f, f.Root, "jail")
	mustCreate(t, f, f.Root, "secret")
	mustCreate(t, f, jail, "inside")

	ctx := LookupCtx{Root: jail, Cwd: jail}
	if _, err := f.Resolve(ctx, "/inside", true); err != abi.OK {
		t.Errorf("inside: %v", err)
	}
	if _, err := f.Resolve(ctx, "/../secret", true); err != abi.ENOENT {
		t.Errorf("escape via ..: err=%v, want ENOENT", err)
	}
}

func TestSymlinks(t *testing.T) {
	f := newFS()
	dir := mustMkdir(t, f, f.Root, "real")
	target := mustCreate(t, f, dir, "target")
	if _, err := f.Symlink(f.Root, "ln", "/real/target", 0, 0); err != abi.OK {
		t.Fatalf("symlink: %v", err)
	}
	got, err := f.Resolve(rootCtx(f), "/ln", true)
	if err != abi.OK || got != target {
		t.Fatalf("follow: %v %v", got, err)
	}
	lnk, err := f.Resolve(rootCtx(f), "/ln", false)
	if err != abi.OK || !lnk.IsSymlink() {
		t.Fatalf("nofollow should return the link: %v", err)
	}
	// Relative symlink resolved from its directory.
	f.Symlink(dir, "rel", "target", 0, 0)
	got, err = f.Resolve(rootCtx(f), "/real/rel", true)
	if err != abi.OK || got != target {
		t.Errorf("relative symlink: %v %v", got, err)
	}
	// Symlink loop returns ELOOP.
	f.Symlink(f.Root, "loop1", "/loop2", 0, 0)
	f.Symlink(f.Root, "loop2", "/loop1", 0, 0)
	if _, err := f.Resolve(rootCtx(f), "/loop1", true); err != abi.ELOOP {
		t.Errorf("loop: %v, want ELOOP", err)
	}
}

func TestLinkAndUnlinkCounts(t *testing.T) {
	f := newFS()
	file := mustCreate(t, f, f.Root, "orig")
	if err := f.Link(f.Root, "extra", file); err != abi.OK {
		t.Fatalf("link: %v", err)
	}
	if file.Nlink != 2 {
		t.Errorf("nlink = %d, want 2", file.Nlink)
	}
	if err := f.Unlink(f.Root, "orig"); err != abi.OK {
		t.Fatalf("unlink: %v", err)
	}
	if file.Nlink != 1 {
		t.Errorf("nlink = %d after unlink, want 1", file.Nlink)
	}
	got, err := f.Resolve(rootCtx(f), "/extra", true)
	if err != abi.OK || got != file {
		t.Errorf("hard link target lost: %v", err)
	}
	if err := f.Link(f.Root, "dirlink", f.Root); err != abi.EPERM {
		t.Errorf("hard-linking a directory: %v, want EPERM", err)
	}
}

func TestInodeRecycling(t *testing.T) {
	f := newFS()
	a := mustCreate(t, f, f.Root, "a")
	ino := a.Ino
	if err := f.Unlink(f.Root, "a"); err != abi.OK {
		t.Fatal(err)
	}
	b := mustCreate(t, f, f.Root, "b")
	if b.Ino != ino {
		t.Errorf("expected the freed inode %d to be recycled, got %d", ino, b.Ino)
	}
}

func TestRenameSemantics(t *testing.T) {
	f := newFS()
	d1 := mustMkdir(t, f, f.Root, "d1")
	d2 := mustMkdir(t, f, f.Root, "d2")
	file := mustCreate(t, f, d1, "f")

	if err := f.Rename(d1, "f", d2, "g"); err != abi.OK {
		t.Fatalf("rename: %v", err)
	}
	if _, err := f.Resolve(rootCtx(f), "/d1/f", true); err != abi.ENOENT {
		t.Errorf("old name survives: %v", err)
	}
	got, _ := f.Resolve(rootCtx(f), "/d2/g", true)
	if got != file {
		t.Errorf("rename moved the wrong inode")
	}
	// Replacing an existing file.
	other := mustCreate(t, f, d2, "h")
	_ = other
	if err := f.Rename(d2, "g", d2, "h"); err != abi.OK {
		t.Fatalf("replace: %v", err)
	}
	got, _ = f.Resolve(rootCtx(f), "/d2/h", true)
	if got != file {
		t.Errorf("replace kept the old inode")
	}
	// Renaming a directory over a non-empty directory fails.
	sub := mustMkdir(t, f, f.Root, "sub")
	mustCreate(t, f, sub, "occupant")
	mustMkdir(t, f, f.Root, "movme")
	if err := f.Rename(f.Root, "movme", f.Root, "sub"); err != abi.ENOTEMPTY {
		t.Errorf("rename over non-empty dir: %v, want ENOTEMPTY", err)
	}
	_ = d1
}

func TestRmdirRules(t *testing.T) {
	f := newFS()
	d := mustMkdir(t, f, f.Root, "d")
	mustCreate(t, f, d, "f")
	if err := f.Rmdir(f.Root, "d"); err != abi.ENOTEMPTY {
		t.Errorf("rmdir non-empty: %v", err)
	}
	f.Unlink(d, "f")
	if err := f.Rmdir(f.Root, "d"); err != abi.OK {
		t.Errorf("rmdir empty: %v", err)
	}
	file := mustCreate(t, f, f.Root, "plain")
	_ = file
	if err := f.Rmdir(f.Root, "plain"); err != abi.ENOTDIR {
		t.Errorf("rmdir on file: %v", err)
	}
	if err := f.Unlink(f.Root, "plain"); err != abi.OK {
		t.Errorf("unlink file: %v", err)
	}
}

func TestReadWriteAt(t *testing.T) {
	f := newFS()
	file := mustCreate(t, f, f.Root, "f")
	if n := file.WriteAt([]byte("hello world"), 0); n != 11 {
		t.Fatalf("write = %d", n)
	}
	if n := file.WriteAt([]byte("WORLD"), 6); n != 5 {
		t.Fatalf("overwrite = %d", n)
	}
	buf := make([]byte, 64)
	n := file.ReadAt(buf, 0)
	if string(buf[:n]) != "hello WORLD" {
		t.Errorf("content = %q", buf[:n])
	}
	// Sparse extension zero-fills.
	file.WriteAt([]byte("!"), 20)
	if file.Size() != 21 {
		t.Errorf("size = %d", file.Size())
	}
	n = file.ReadAt(buf, 11)
	if !strings.HasPrefix(string(buf[:n]), "\x00") {
		t.Errorf("gap not zero-filled: %q", buf[:n])
	}
	if n := file.ReadAt(buf, 100); n != 0 {
		t.Errorf("read past EOF = %d", n)
	}
}

func TestTruncate(t *testing.T) {
	f := newFS()
	file := mustCreate(t, f, f.Root, "f")
	file.WriteAt([]byte("abcdef"), 0)
	if err := file.Truncate(3); err != abi.OK || string(file.Data) != "abc" {
		t.Errorf("shrink: %q %v", file.Data, err)
	}
	if err := file.Truncate(6); err != abi.OK || file.Size() != 6 {
		t.Errorf("grow: %d %v", file.Size(), err)
	}
	d := mustMkdir(t, f, f.Root, "d")
	if err := d.Truncate(0); err != abi.EINVAL {
		t.Errorf("truncate dir: %v", err)
	}
}

func TestMtimeFromClock(t *testing.T) {
	f := newFS()
	file := mustCreate(t, f, f.Root, "f")
	before := file.Mtime
	file.WriteAt([]byte("x"), 0)
	if file.Mtime <= before {
		t.Errorf("mtime did not advance on write")
	}
}

func TestReadDirOrderIsSaltedHashNotSorted(t *testing.T) {
	f := newFS()
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for _, n := range names {
		mustCreate(t, f, f.Root, n)
	}
	ents := f.ReadDirRaw(f.Root)
	if len(ents) != len(names) {
		t.Fatalf("entries = %d", len(ents))
	}
	var got []string
	sorted := true
	for i, e := range ents {
		got = append(got, e.Name)
		if i > 0 && ents[i-1].Name > e.Name {
			sorted = false
		}
	}
	if sorted {
		t.Errorf("host order accidentally sorted: %v", got)
	}
	// Stable across calls.
	again := f.ReadDirRaw(f.Root)
	for i := range again {
		if again[i].Name != ents[i].Name {
			t.Errorf("order unstable across calls")
			break
		}
	}
}

func TestDirSizeUsesMachineFormula(t *testing.T) {
	sky := machine.CloudLabC220G5()
	bro := machine.PortabilityBroadwell()
	mk := func(p *machine.Profile, n int) int64 {
		clock := int64(0)
		f := New(p, func() int64 { clock++; return clock }, prng.NewHost(1))
		for i := 0; i < n; i++ {
			f.CreateFile(f.Root, fmt.Sprintf("f%03d", i), 0o644, 0, 0)
		}
		return f.Root.Size()
	}
	if mk(sky, 100) == mk(bro, 100) {
		t.Errorf("directory sizes should differ across machines for 100 entries")
	}
}

func TestBindMount(t *testing.T) {
	f := newFS()
	src := mustMkdir(t, f, f.Root, "srcdir")
	mustCreate(t, f, src, "payload")
	tgt := mustMkdir(t, f, f.Root, "mnt")
	_ = tgt
	if err := f.BindMount(f.Root, "mnt", src); err != abi.OK {
		t.Fatalf("bind: %v", err)
	}
	got, err := f.Resolve(rootCtx(f), "/mnt/payload", true)
	if err != abi.OK || !got.IsRegular() {
		t.Errorf("bind-mounted payload unreachable: %v", err)
	}
}

func TestStatFields(t *testing.T) {
	f := newFS()
	file := mustCreate(t, f, f.Root, "f")
	file.WriteAt(make([]byte, 1500), 0)
	var st abi.Stat
	file.Stat(&st)
	if !st.IsRegular() || st.Size != 1500 || st.Blksize != 4096 {
		t.Errorf("stat = %+v", st)
	}
	if st.Blocks != (1500+511)/512 {
		t.Errorf("blocks = %d", st.Blocks)
	}
	if st.Mtime.Nanos() == 0 {
		t.Errorf("mtime missing")
	}
}

// Property: Populate then SnapshotImage is the identity on image content.
func TestImageRoundTripProperty(t *testing.T) {
	prop := func(namesRaw []uint8, blobs [][]byte) bool {
		im := NewImage()
		for i, b := range blobs {
			if i >= len(namesRaw) {
				break
			}
			name := fmt.Sprintf("/dir%d/file-%d", namesRaw[i]%3, i)
			im.AddFile(name, 0o644, b)
		}
		im.AddDir("/empty", 0o700)
		im.AddSymlink("/ln", "/empty")

		f := newFS()
		f.Populate(im)
		back := f.SnapshotImage(f.Root)
		for p, e := range im.Entries {
			g, ok := back.Entries[p]
			if !ok {
				return false
			}
			if string(g.Data) != string(e.Data) || g.Mode&abi.ModeTypeMask != e.Mode&abi.ModeTypeMask {
				return false
			}
			if e.Target != g.Target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Walk visits paths in sorted order, exactly once each.
func TestWalkSortedProperty(t *testing.T) {
	prop := func(seeds []uint8) bool {
		f := newFS()
		cur := f.Root
		for i, s := range seeds {
			name := fmt.Sprintf("n%02x", s)
			if s%3 == 0 {
				if d, err := f.Mkdir(cur, name, 0o755, 0, 0); err == abi.OK {
					cur = d
				}
			} else {
				f.CreateFile(cur, fmt.Sprintf("%s-%d", name, i), 0o644, 0, 0)
			}
		}
		var paths []string
		f.Walk(f.Root, func(p string, n *Inode) { paths = append(paths, p) })
		seen := map[string]bool{}
		for i, p := range paths {
			if seen[p] {
				return false
			}
			seen[p] = true
			if i > 1 && paths[i-1] >= p { // index 0 is "/"
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: creating then unlinking any set of names leaves the directory
// with its original entry count and link count.
func TestCreateUnlinkInvariant(t *testing.T) {
	prop := func(names []uint16) bool {
		f := newFS()
		base := f.Root.NumEntries()
		created := map[string]bool{}
		for _, n := range names {
			name := fmt.Sprintf("f%05d", n)
			if created[name] {
				continue
			}
			if _, err := f.CreateFile(f.Root, name, 0o644, 0, 0); err != abi.OK {
				return false
			}
			created[name] = true
		}
		for name := range created {
			if err := f.Unlink(f.Root, name); err != abi.OK {
				return false
			}
		}
		return f.Root.NumEntries() == base && f.Root.Nlink == 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// helpers shared with image_test.go
func profFor() *machine.Profile { return machine.CloudLabC220G5() }

func hostPool(seed uint64) *prng.Host { return prng.NewHost(seed) }
