// Package fs implements the in-memory filesystem of the simulated kernel.
//
// It deliberately reproduces every filesystem behaviour the paper identifies
// as a source of irreproducibility (§5.5, §7.3):
//
//   - inode numbers are allocated from a boot-time random base and recycled
//     through a free list, so they differ across runs and a recycled inode
//     can be handed to a brand-new file;
//   - timestamps come from the host wall clock;
//   - directory entries iterate in a hash order salted per boot, so
//     getdents order varies run to run and machine to machine;
//   - directories report an st_size computed by the host machine's
//     filesystem formula, which differs across machines with identical
//     contents.
//
// DetTrace's job (internal/core) is to mask all of it.
package fs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/derive"
	"repro/internal/machine"
	"repro/internal/prng"
)

// Clock supplies the current wall-clock time in nanoseconds since the epoch.
type Clock func() int64

// Device is the backend of a character-device inode such as /dev/urandom.
type Device interface {
	// ReadDev fills p and returns the byte count.
	ReadDev(p []byte) int
	// WriteDev consumes p and returns the byte count.
	WriteDev(p []byte) int
}

// FS is one mounted filesystem instance: a single tree rooted at Root.
//
// An FS is either live (mutable, the normal case), frozen (an immutable
// template base, see Freeze), or a fork of a frozen base (see Fork): a
// copy-on-write overlay whose inodes are materialized lazily from the base
// and cloned on first mutation.
type FS struct {
	Root    *Inode
	profile *machine.Profile
	clock   Clock
	entropy *prng.Host

	dev       uint64
	inoBase   uint64 // first inode number of this boot
	nextIno   uint64
	inoStride uint64
	freeInos  []uint64 // recycled inode numbers, reused LIFO
	hashSeed  uint64   // salts directory iteration order

	// COW state. frozen marks an immutable template base; base and clones
	// are set on forks: base is the frozen FS this overlay was forked from
	// and clones maps base inodes to their materialized per-fork shells.
	frozen    bool
	base      *FS
	clones    map[*Inode]*Inode
	bootStamp int64 // fork boot time: the timestamp cold Populate would use

	// wsOut counts forked thread workspaces (workspace.go) not yet merged
	// or discarded. Checkpoint seals require quiescence, so it must be zero
	// whenever a seal is taken.
	wsOut int

	// Delta-seal state (delta.go). sealEpoch numbers the inter-seal window
	// the filesystem is currently in (1 before the first seal); WriteAt,
	// Truncate and Amend stamp it into Inode.dataEpoch so SealCheckpoint can
	// tell dirty file contents from clean ones. lastSeal/lastSealMemo
	// remember the previous seal and its live→clone mapping, the sharing
	// substrate for delta seals.
	sealEpoch    uint64
	lastSeal     *Seal
	lastSealMemo map[*Inode]*Inode

	// OnCOWBreak, when non-nil, observes each copy-on-write data unshare
	// (the copied byte count). Observation only: the callback must not
	// touch the filesystem.
	OnCOWBreak func(bytes int64)
}

// New creates an empty filesystem for one simulated boot of the given
// machine. The entropy pool determines the inode numbering base and the
// directory hash salt for this boot.
func New(p *machine.Profile, clock Clock, entropy *prng.Host) *FS {
	f := &FS{
		profile:   p,
		clock:     clock,
		entropy:   entropy,
		dev:       0x801,
		inoBase:   2 + entropy.Uint64()%1_000_000*16, // boot-dependent base
		inoStride: 1,
		// Directory iteration order is an htree hash salted at mkfs time:
		// stable for one machine's filesystem across runs, different across
		// machines. That is why readdir order is a portability leak rather
		// than a run-to-run one (§7.3).
		hashSeed:  nameSeed(p.Name),
		sealEpoch: 1,
	}
	f.nextIno = f.inoBase
	f.Root = f.newInode(abi.ModeDir | 0o755)
	f.Root.parent = f.Root
	return f
}

// Inode is a single filesystem object. Exactly one of the type-specific
// fields is populated, according to the S_IF bits in Mode.
type Inode struct {
	Ino   uint64
	Mode  uint32
	UID   uint32
	GID   uint32
	Nlink uint32

	Atime int64 // nanoseconds since epoch
	Mtime int64
	Ctime int64

	Data    []byte            // regular files
	entries map[string]*Inode // directories
	parent  *Inode            // directories: ".."
	Target  string            // symlinks
	Pipe    *Pipe             // FIFOs
	DevID   string            // character devices, resolved by the kernel

	// COW state, set on inodes of a forked FS. cowDir points at the frozen
	// base directory whose entries this shell has not yet materialized;
	// cowData marks file Data still shared read-only with the base.
	cowDir  *Inode
	cowData bool

	// dataEpoch is the owning filesystem's sealEpoch at the last Data
	// mutation (WriteAt/Truncate/Amend). Data is unchanged since the last
	// checkpoint seal iff dataEpoch < fs.sealEpoch — the only sound dirtiness
	// signal, because WriteAt mutates Data in place without changing slice
	// identity. Metadata dirtiness needs no epoch: delta sealing compares the
	// fields directly.
	dataEpoch uint64

	fs *FS
}

func (f *FS) newInode(mode uint32) *Inode {
	f.mustMutable()
	var ino uint64
	if n := len(f.freeInos); n > 0 {
		// Recycle, exactly like a real filesystem would. DetTrace must not
		// let a recycled number alias an old virtual inode (§5.5).
		ino = f.freeInos[n-1]
		f.freeInos = f.freeInos[:n-1]
	} else {
		ino = f.nextIno
		f.nextIno += f.inoStride
	}
	now := f.clock()
	nd := &Inode{
		Ino: ino, Mode: mode, Nlink: 1,
		Atime: now, Mtime: now, Ctime: now,
		fs: f,
	}
	if mode&abi.ModeTypeMask == abi.ModeDir {
		nd.entries = make(map[string]*Inode)
		nd.Nlink = 2
	}
	return nd
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Mode&abi.ModeTypeMask == abi.ModeDir }

// IsSymlink reports whether the inode is a symbolic link.
func (n *Inode) IsSymlink() bool { return n.Mode&abi.ModeTypeMask == abi.ModeSymlink }

// IsRegular reports whether the inode is a regular file.
func (n *Inode) IsRegular() bool { return n.Mode&abi.ModeTypeMask == abi.ModeRegular }

// IsFIFO reports whether the inode is a named pipe.
func (n *Inode) IsFIFO() bool { return n.Mode&abi.ModeTypeMask == abi.ModeFIFO }

// IsDevice reports whether the inode is a character device.
func (n *Inode) IsDevice() bool { return n.Mode&abi.ModeTypeMask == abi.ModeCharDev }

// NumEntries returns the number of directory entries excluding "." and "..".
func (n *Inode) NumEntries() int { return n.entryCount() }

// Size returns the st_size the host reports for this inode. For directories
// this is where the machine-specific formula leaks through (§7.3).
func (n *Inode) Size() int64 {
	switch {
	case n.IsDir():
		return n.fs.profile.DirSize(n.entryCount())
	case n.IsSymlink():
		return int64(len(n.Target))
	default:
		return int64(len(n.Data))
	}
}

// Stat fills in the host-truth stat structure for the inode. DetTrace
// rewrites several of these fields before the tracee sees them.
func (n *Inode) Stat(out *abi.Stat) {
	*out = abi.Stat{
		Dev: n.fs.dev, Ino: n.Ino, Mode: n.Mode, Nlink: n.Nlink,
		UID: n.UID, GID: n.GID, Size: n.Size(),
		Blksize: 4096, Blocks: (n.Size() + 511) / 512,
		Atime: abi.TimespecFromNanos(n.Atime),
		Mtime: abi.TimespecFromNanos(n.Mtime),
		Ctime: abi.TimespecFromNanos(n.Ctime),
	}
}

// --- path resolution -------------------------------------------------------

// maxSymlinkDepth matches the kernel's ELOOP limit.
const maxSymlinkDepth = 40

// LookupCtx anchors a path resolution: the process's root (chroot) and
// current working directory.
type LookupCtx struct {
	Root *Inode
	Cwd  *Inode
}

// Resolve walks path and returns the inode it names. If followLast is false
// and the final component is a symlink, the link inode itself is returned
// (lstat semantics).
func (f *FS) Resolve(ctx LookupCtx, path string, followLast bool) (*Inode, abi.Errno) {
	n, _, _, err := f.resolve(ctx, path, followLast, 0)
	return n, err
}

// ResolveParent walks path and returns the parent directory of the final
// component along with the final component name. The final component itself
// need not exist.
func (f *FS) ResolveParent(ctx LookupCtx, path string) (*Inode, string, abi.Errno) {
	_, dir, name, err := f.resolve(ctx, path, false, 0)
	if err == abi.OK || err == abi.ENOENT {
		if dir == nil {
			return nil, "", abi.ENOENT
		}
		if name == "" {
			return nil, "", abi.EEXIST // path named the root itself
		}
		return dir, name, abi.OK
	}
	return nil, "", err
}

// resolve returns (target, parentDir, finalName, errno). When the final
// component is missing it returns (nil, parent, name, ENOENT) so callers can
// create it.
func (f *FS) resolve(ctx LookupCtx, path string, followLast bool, depth int) (*Inode, *Inode, string, abi.Errno) {
	if depth > maxSymlinkDepth {
		return nil, nil, "", abi.ELOOP
	}
	if path == "" {
		return nil, nil, "", abi.ENOENT
	}
	cur := ctx.Cwd
	if strings.HasPrefix(path, "/") {
		cur = ctx.Root
	}
	if cur == nil {
		return nil, nil, "", abi.ENOENT
	}
	comps := splitPath(path)
	if len(comps) == 0 {
		return cur, cur, "", abi.OK
	}
	for i, c := range comps {
		if !cur.IsDir() {
			return nil, nil, "", abi.ENOTDIR
		}
		var next *Inode
		switch c {
		case ".":
			next = cur
		case "..":
			if cur == ctx.Root {
				next = cur // cannot escape the chroot
			} else {
				next = cur.parent
			}
		default:
			next = cur.ents()[c]
		}
		last := i == len(comps)-1
		if next == nil {
			if last {
				return nil, cur, c, abi.ENOENT
			}
			return nil, nil, "", abi.ENOENT
		}
		if next.IsSymlink() && (!last || followLast) {
			rest := strings.Join(comps[i+1:], "/")
			tgt := next.Target
			if rest != "" {
				tgt = tgt + "/" + rest
			}
			sub := ctx
			sub.Cwd = cur
			return f.resolve(sub, tgt, followLast, depth+1)
		}
		cur = next
	}
	// cur's parent/name: recompute name for callers that need it.
	return cur, cur.parent, comps[len(comps)-1], abi.OK
}

func splitPath(p string) []string {
	raw := strings.Split(p, "/")
	out := raw[:0]
	for _, c := range raw {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

// --- mutation --------------------------------------------------------------

// CreateFile creates a regular file under dir. EEXIST if the name is taken.
func (f *FS) CreateFile(dir *Inode, name string, mode uint32, uid, gid uint32) (*Inode, abi.Errno) {
	return f.createNode(dir, name, abi.ModeRegular|mode&abi.ModePermMask, uid, gid)
}

// Mkdir creates a directory under dir.
func (f *FS) Mkdir(dir *Inode, name string, mode uint32, uid, gid uint32) (*Inode, abi.Errno) {
	n, err := f.createNode(dir, name, abi.ModeDir|mode&abi.ModePermMask, uid, gid)
	if err == abi.OK {
		dir.Nlink++
	}
	return n, err
}

// Mkfifo creates a named pipe under dir.
func (f *FS) Mkfifo(dir *Inode, name string, mode uint32, uid, gid uint32) (*Inode, abi.Errno) {
	n, err := f.createNode(dir, name, abi.ModeFIFO|mode&abi.ModePermMask, uid, gid)
	if err == abi.OK {
		n.Pipe = NewPipe(DefaultPipeCapacity)
	}
	return n, err
}

// Mkdev creates a character device under dir; the kernel resolves devID to a
// Device implementation at open time, which lets DetTrace swap /dev/urandom
// for its PRNG without touching the tree.
func (f *FS) Mkdev(dir *Inode, name, devID string, uid, gid uint32) (*Inode, abi.Errno) {
	n, err := f.createNode(dir, name, abi.ModeCharDev|0o666, uid, gid)
	if err == abi.OK {
		n.DevID = devID
	}
	return n, err
}

// Symlink creates a symbolic link under dir pointing at target.
func (f *FS) Symlink(dir *Inode, name, target string, uid, gid uint32) (*Inode, abi.Errno) {
	n, err := f.createNode(dir, name, abi.ModeSymlink|0o777, uid, gid)
	if err == abi.OK {
		n.Target = target
	}
	return n, err
}

func (f *FS) createNode(dir *Inode, name string, mode uint32, uid, gid uint32) (*Inode, abi.Errno) {
	if !dir.IsDir() {
		return nil, abi.ENOTDIR
	}
	if name == "" || name == "." || name == ".." {
		return nil, abi.EINVAL
	}
	if _, ok := dir.ents()[name]; ok {
		return nil, abi.EEXIST
	}
	n := f.newInode(mode)
	n.UID, n.GID = uid, gid
	n.parent = dir
	dir.ents()[name] = n
	dir.touchMtime()
	return n, abi.OK
}

// Link adds a hard link to an existing inode. Directories cannot be linked.
func (f *FS) Link(dir *Inode, name string, target *Inode) abi.Errno {
	f.mustMutable()
	if target.IsDir() {
		return abi.EPERM
	}
	if _, ok := dir.ents()[name]; ok {
		return abi.EEXIST
	}
	dir.ents()[name] = target
	target.Nlink++
	target.Ctime = f.clock()
	dir.touchMtime()
	return abi.OK
}

// Unlink removes name from dir. Freed inode numbers go to the recycle list.
func (f *FS) Unlink(dir *Inode, name string) abi.Errno {
	f.mustMutable()
	n, ok := dir.ents()[name]
	if !ok {
		return abi.ENOENT
	}
	if n.IsDir() {
		return abi.EISDIR
	}
	delete(dir.ents(), name)
	dir.touchMtime()
	n.Nlink--
	n.Ctime = f.clock()
	if n.Nlink == 0 {
		f.freeInos = append(f.freeInos, n.Ino)
	}
	return abi.OK
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(dir *Inode, name string) abi.Errno {
	f.mustMutable()
	n, ok := dir.ents()[name]
	if !ok {
		return abi.ENOENT
	}
	if !n.IsDir() {
		return abi.ENOTDIR
	}
	if n.entryCount() != 0 {
		return abi.ENOTEMPTY
	}
	delete(dir.ents(), name)
	dir.Nlink--
	dir.touchMtime()
	f.freeInos = append(f.freeInos, n.Ino)
	return abi.OK
}

// Rename moves the entry oldName in oldDir to newName in newDir, replacing
// any existing non-directory target.
func (f *FS) Rename(oldDir *Inode, oldName string, newDir *Inode, newName string) abi.Errno {
	f.mustMutable()
	n, ok := oldDir.ents()[oldName]
	if !ok {
		return abi.ENOENT
	}
	if existing, ok := newDir.ents()[newName]; ok {
		if existing == n {
			return abi.OK
		}
		if existing.IsDir() {
			if !n.IsDir() {
				return abi.EISDIR
			}
			if existing.entryCount() != 0 {
				return abi.ENOTEMPTY
			}
			newDir.Nlink--
		}
	}
	delete(oldDir.ents(), oldName)
	newDir.ents()[newName] = n
	if n.IsDir() {
		n.parent = newDir
		oldDir.Nlink--
		newDir.Nlink++
	}
	now := f.clock()
	oldDir.Mtime, oldDir.Ctime = now, now
	newDir.Mtime, newDir.Ctime = now, now
	n.Ctime = now
	return abi.OK
}

// BindMount grafts src onto the entry name under dir, replacing whatever was
// there. This is the mechanism behind DetTrace's --working-dir flag.
func (f *FS) BindMount(dir *Inode, name string, src *Inode) abi.Errno {
	f.mustMutable()
	if !dir.IsDir() {
		return abi.ENOTDIR
	}
	dir.ents()[name] = src
	if src.IsDir() {
		src.parent = dir
	}
	return abi.OK
}

func (n *Inode) touchMtime() {
	now := n.fs.clock()
	n.Mtime, n.Ctime = now, now
}

// --- file IO ---------------------------------------------------------------

// ReadAt copies file bytes at off into p, returning the count. Reading past
// EOF returns 0. Updates atime, like a real (non-relatime) mount.
func (n *Inode) ReadAt(p []byte, off int64) int {
	if off >= int64(len(n.Data)) {
		return 0
	}
	c := copy(p, n.Data[off:])
	n.Atime = n.fs.clock()
	return c
}

// WriteAt copies p into the file at off, growing it as needed, and stamps
// mtime from the host clock — the timestamp tar will later embed.
func (n *Inode) WriteAt(p []byte, off int64) int {
	n.breakCOWData()
	end := off + int64(len(p))
	if end > int64(len(n.Data)) {
		grown := make([]byte, end)
		copy(grown, n.Data)
		n.Data = grown
	}
	copy(n.Data[off:], p)
	n.dataEpoch = n.fs.sealEpoch
	n.touchMtime()
	return len(p)
}

// Truncate resizes the file.
func (n *Inode) Truncate(size int64) abi.Errno {
	if !n.IsRegular() {
		return abi.EINVAL
	}
	n.breakCOWData()
	if size <= int64(len(n.Data)) {
		n.Data = n.Data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, n.Data)
		n.Data = grown
	}
	n.dataEpoch = n.fs.sealEpoch
	n.touchMtime()
	return abi.OK
}

// --- directory listing -----------------------------------------------------

// ReadDirRaw returns the entries of dir in the host filesystem's iteration
// order: a per-boot salted hash order, like ext4's htree. Two boots (or two
// machines) list the same directory differently, which is why DetTrace must
// sort getdents results (§5.5).
func (f *FS) ReadDirRaw(dir *Inode) []abi.Dirent {
	ents := dir.ents()
	names := make([]string, 0, len(ents))
	for name := range ents {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return f.nameHash(names[i]) < f.nameHash(names[j])
	})
	out := make([]abi.Dirent, len(names))
	for i, name := range names {
		e := ents[name]
		out[i] = abi.Dirent{Ino: e.Ino, Type: e.Mode & abi.ModeTypeMask, Name: name}
	}
	dir.Atime = f.clock()
	return out
}

// nameSeed derives the filesystem's directory-hash salt from the machine
// identity.
func nameSeed(name string) uint64 { return derive.DigestBytes([]byte(name)) }

// nameHash is an FNV-style hash salted with the filesystem seed.
func (f *FS) nameHash(name string) uint64 {
	h := f.hashSeed ^ 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// Walk visits every inode under root in sorted-path order, calling fn with
// the path (rooted at "/") and inode. Used by hashdeep and diffoscope.
func (f *FS) Walk(root *Inode, fn func(path string, n *Inode)) {
	var rec func(prefix string, dir *Inode)
	rec = func(prefix string, dir *Inode) {
		ents := dir.ents()
		names := make([]string, 0, len(ents))
		for name := range ents {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := ents[name]
			p := prefix + "/" + name
			fn(p, child)
			if child.IsDir() {
				rec(p, child)
			}
		}
	}
	fn("/", root)
	if root.IsDir() {
		rec("", root)
	}
}

// PathError formats an errno with the offending path for debug output.
func PathError(op, path string, err abi.Errno) error {
	return fmt.Errorf("%s %s: %s", op, path, err)
}
