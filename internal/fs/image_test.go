package fs

import (
	"testing"

	"repro/internal/abi"
)

func TestImageCloneIndependence(t *testing.T) {
	a := NewImage()
	a.AddFile("/f", 0o644, []byte("original"))
	b := a.Clone()
	b.Entries["/f"].Data[0] = 'X'
	b.AddFile("/extra", 0o644, nil)
	if string(a.Entries["/f"].Data) != "original" {
		t.Errorf("clone aliases the original's data")
	}
	if _, ok := a.Entries["/extra"]; ok {
		t.Errorf("clone shares the entry map")
	}
}

func TestImagePathNormalization(t *testing.T) {
	im := NewImage()
	im.AddFile("no/leading/slash", 0o644, nil)
	im.AddDir("/trailing/slash/", 0o755)
	if _, ok := im.Entries["/no/leading/slash"]; !ok {
		t.Errorf("relative path not normalized: %v", im.Paths())
	}
	if _, ok := im.Entries["/trailing/slash"]; !ok {
		t.Errorf("trailing slash not trimmed: %v", im.Paths())
	}
}

func TestImagePathsSorted(t *testing.T) {
	im := NewImage()
	for _, p := range []string{"/z", "/a", "/m/x", "/m"} {
		im.AddFile(p, 0o644, nil)
	}
	ps := im.Paths()
	for i := 1; i < len(ps); i++ {
		if ps[i-1] >= ps[i] {
			t.Fatalf("paths not sorted: %v", ps)
		}
	}
}

func TestPopulateCreatesMissingParents(t *testing.T) {
	im := NewImage()
	im.AddFile("/deep/ly/nested/file", 0o600, []byte("x"))
	f := newFS()
	f.Populate(im)
	n, err := f.Resolve(rootCtx(f), "/deep/ly/nested/file", true)
	if err != abi.OK || !n.IsRegular() {
		t.Fatalf("resolve: %v", err)
	}
	dir, err := f.Resolve(rootCtx(f), "/deep/ly", true)
	if err != abi.OK || !dir.IsDir() {
		t.Fatalf("parent missing: %v", err)
	}
}

func TestPopulateDeviceAndSymlink(t *testing.T) {
	im := NewImage()
	im.AddDev("/dev/custom", "custom-id")
	im.AddSymlink("/ln", "/dev/custom")
	f := newFS()
	f.Populate(im)
	n, err := f.Resolve(rootCtx(f), "/ln", true)
	if err != abi.OK || !n.IsDevice() || n.DevID != "custom-id" {
		t.Fatalf("device via symlink: %v %+v", err, n)
	}
}

func TestSnapshotRoundTripPermissions(t *testing.T) {
	im := NewImage()
	im.AddFile("/exe", 0o755, []byte("#!"))
	im.AddFile("/secret", 0o600, []byte("s"))
	f := newFS()
	f.Populate(im)
	back := f.SnapshotImage(f.Root)
	if back.Entries["/exe"].Mode&abi.ModePermMask != 0o755 {
		t.Errorf("exe mode = %o", back.Entries["/exe"].Mode)
	}
	if back.Entries["/secret"].Mode&abi.ModePermMask != 0o600 {
		t.Errorf("secret mode = %o", back.Entries["/secret"].Mode)
	}
}

func TestTwoPopulationsDifferentInodesSameContent(t *testing.T) {
	im := NewImage()
	im.AddFile("/f", 0o644, []byte("stable"))
	mk := func(seed uint64) *FS {
		clock := int64(0)
		f := New(profFor(), func() int64 { clock++; return clock }, hostPool(seed))
		f.Populate(im)
		return f
	}
	a, b := mk(1), mk(2)
	na, _ := a.Resolve(LookupCtx{Root: a.Root, Cwd: a.Root}, "/f", true)
	nb, _ := b.Resolve(LookupCtx{Root: b.Root, Cwd: b.Root}, "/f", true)
	if na.Ino == nb.Ino {
		t.Errorf("two chroot copies should get different inode numbers")
	}
	if string(na.Data) != string(nb.Data) {
		t.Errorf("content must match")
	}
}
