// Package sched implements DetTrace's reproducible scheduler (§5.6, Fig. 3).
//
// The scheduler's one job is to make every ordering decision a pure function
// of the container's logical history — never of host time, host PIDs, or
// physical arrival order. It does so by assigning each thread a virtual TID
// in spawn order and driving three queues:
//
//   - Parallel: threads currently between system calls (compute, special
//     instructions). These run concurrently on the physical machine; the
//     scheduler merely processes their bookkeeping in vTID order.
//   - Runnable: threads stopped at a system call, serviced strictly FIFO —
//     this is the sequentialization of system call execution.
//   - Blocked: threads whose call would block, revisited fairly (front,
//     then rotate) so any call unblocked by another process's progress
//     eventually runs.
//
// It also owns the two §5.7/§5.9 thread rules: threads within a process are
// serialized via an execution token that changes hands only at system
// calls, thread creation and exit; and a token holder that spins in pure
// compute while siblings starve is detected as a busy-waiter.
package sched

import (
	"errors"

	"repro/internal/kernel"
	"repro/internal/obs"
)

// ErrBusyWait is raised when a thread busy-waits: the serialized-thread
// scheduler would never switch away from it, so the container cannot make
// progress (the Java-build failure class of §7.1.1).
var ErrBusyWait = errors.New("sched: busy-waiting thread detected (unsupported under serialized threads)")

// DefaultSpinLimit is how many consecutive syscall-free actions a token
// holder may take while a sibling thread is starved before the scheduler
// declares a busy-wait.
const DefaultSpinLimit = 4096

// Scheduler is the reproducible policy's ordering engine.
type Scheduler struct {
	vtid     map[*kernel.Thread]int
	nextVTID int

	// runnable holds threads stopped at a system call, ordered by logical
	// arrival time (the jitter-free LClock when the stop was first seen,
	// with vTID breaking ties). Servicing in logical-arrival order keeps
	// the tracer from idling on a stop that is still far in the future
	// while already-stopped processes wait — and stays a pure function of
	// logical history, so it is reproducible.
	runnable []arrival
	// inRunnable tracks membership so re-offered threads aren't re-queued.
	inRunnable map[*kernel.Thread]bool

	// blockedRotor remembers where the fair Blocked-queue scan left off.
	blockedRotor int

	// turn alternates servicing between parallel work and the Runnable
	// queue so neither starves the other.
	turn int64

	// token maps a process (by its vPID owner thread set) to the thread
	// currently holding the execution token.
	token map[*kernel.Proc]*kernel.Thread

	SpinLimit int

	// Workspace marks the workspace-consistency execution mode (ISSUE 7):
	// syscall-free sibling threads run concurrently in private COW
	// workspaces and serialize only at sync points. In this mode a PARKED
	// sibling is usually waiting at a merge barrier (futex join), not
	// starving for the token, so the §5.9 spin detector must not count it —
	// counting only PENDING siblings keeps true busy-waiters (spinning in
	// pure compute while a sibling is stuck pending) detected identically
	// in both modes.
	Workspace bool

	// Err is set when the scheduler detects an unsupported condition; the
	// policy turns it into a container abort.
	Err error

	// Requests counts scheduling decisions, for Table 2.
	Requests int64

	// Rec, when non-nil, receives one KindSched event per decision: the
	// chosen vTID and which queue it came from. Decisions are pure
	// functions of logical history, so the event stream is too.
	Rec *obs.Recorder
}

// Queue classes reported in KindSched events.
const (
	pickedParallel = iota
	pickedRunnable
	pickedBlocked
)

// picked records the decision and returns t unchanged.
func (s *Scheduler) picked(t *kernel.Thread, class uint64) *kernel.Thread {
	if t != nil {
		s.Rec.Record(t.LClock, obs.KindSched, 0, int32(s.vtid[t]), class, 0)
	}
	return t
}

// Seal is the scheduler's checkpointable state at a quiescent traced stop.
// Quiescence (one process, one live thread, stopped at an unattempted execve
// that has not yet been through Pick) empties everything transient: the
// Runnable queue holds nothing, inRunnable is false for the survivor, and no
// sibling can contend for the token. What remains is the counter state that
// future decisions are a pure function of.
type Seal struct {
	VTID         int
	NextVTID     int
	Turn         int64
	BlockedRotor int
	Requests     int64
	TokenHeld    bool
	// Registered distinguishes a sealed vTID of 0 from "never Picked yet":
	// the init thread is only Registered by its first Pick, so a seal taken
	// at the boot execve must leave the resumed thread unregistered too —
	// otherwise nextVTID stays 0 and the next spawn collides with vTID 0.
	Registered bool
}

// CheckpointSeal captures the scheduler state relevant to the sole surviving
// thread t. The caller (the kernel's quiescence check) guarantees t is the
// only live thread and its stop has not been Picked yet.
func (s *Scheduler) CheckpointSeal(t *kernel.Thread) Seal {
	_, registered := s.vtid[t]
	return Seal{
		VTID:         s.vtid[t],
		NextVTID:     s.nextVTID,
		Turn:         s.turn,
		BlockedRotor: s.blockedRotor,
		Requests:     s.Requests,
		TokenHeld:    s.token[t.Proc] == t,
		Registered:   registered,
	}
}

// RestoreSeal rebinds a seal to the resumed incarnation of the surviving
// thread on a fresh scheduler, so the next Pick makes exactly the decision
// the uninterrupted run made (same vTID, same turn parity, same rotor).
func (s *Scheduler) RestoreSeal(seal Seal, t *kernel.Thread) {
	if seal.Registered {
		s.vtid[t] = seal.VTID
	}
	s.nextVTID = seal.NextVTID
	s.turn = seal.Turn
	s.blockedRotor = seal.BlockedRotor
	s.Requests = seal.Requests
	if seal.TokenHeld {
		s.token[t.Proc] = t
	}
}

// arrival is one queued syscall stop.
type arrival struct {
	t   *kernel.Thread
	key int64 // LClock at enqueue
}

// New returns an empty scheduler.
func New() *Scheduler {
	return &Scheduler{
		vtid:       make(map[*kernel.Thread]int),
		inRunnable: make(map[*kernel.Thread]bool),
		token:      make(map[*kernel.Proc]*kernel.Thread),
		SpinLimit:  DefaultSpinLimit,
	}
}

// Register assigns a vTID at spawn; idempotent.
func (s *Scheduler) Register(t *kernel.Thread) {
	if _, ok := s.vtid[t]; !ok {
		s.vtid[t] = s.nextVTID
		s.nextVTID++
	}
}

// VTID returns the thread's virtual TID.
func (s *Scheduler) VTID(t *kernel.Thread) int { return s.vtid[t] }

// Unregister drops a thread at exit and releases its token. The vTID entry
// is removed too: a dead thread must never be eligible for the token again.
func (s *Scheduler) Unregister(t *kernel.Thread) {
	if s.token[t.Proc] == t {
		s.ReleaseToken(t)
		if s.token[t.Proc] == t {
			delete(s.token, t.Proc)
		}
	}
	delete(s.vtid, t)
	delete(s.inRunnable, t)
	for i, r := range s.runnable {
		if r.t == t {
			s.runnable = append(s.runnable[:i], s.runnable[i+1:]...)
			break
		}
	}
}

// holdsToken reports whether t may run under the serialized-thread rule and
// claims the token when free.
func (s *Scheduler) holdsToken(t *kernel.Thread) bool {
	p := t.Proc
	if len(p.Threads) <= 1 {
		return true
	}
	cur, ok := s.token[p]
	if !ok || cur == nil || cur.Proc != p || cur.Dead() {
		s.token[p] = t
		return true
	}
	return cur == t
}

// ReleaseToken passes the token to the next live sibling in vTID order —
// called by the policy at system calls, thread spawn and exit (§5.9's
// context-switch points).
func (s *Scheduler) ReleaseToken(t *kernel.Thread) {
	p := t.Proc
	if s.token[p] != t {
		return
	}
	t.SpinCount = 0
	// Hand off to the next sibling after t in vTID order, wrapping.
	var best, first *kernel.Thread
	myV := s.vtid[t]
	bestV, firstV := int(^uint(0)>>1), int(^uint(0)>>1)
	for _, sib := range p.Threads {
		if sib == t || sib.Dead() {
			continue
		}
		v, ok := s.vtid[sib]
		if !ok {
			continue
		}
		if v > myV && v < bestV {
			best, bestV = sib, v
		}
		if v < firstV {
			first, firstV = sib, v
		}
	}
	switch {
	case best != nil:
		s.token[p] = best
	case first != nil:
		s.token[p] = first
	default:
		delete(s.token, p)
	}
}

// Pick selects the next pending or parked thread to process. The kernel
// supplies pending in arbitrary host order; parked is the policy's Blocked
// queue in park order. Decisions depend only on vTIDs and queue history.
func (s *Scheduler) Pick(k *kernel.Kernel, pending []*kernel.Thread) *kernel.Thread {
	s.Requests++
	for _, t := range pending {
		s.Register(t) // init thread is never OnSpawn'd
	}

	// 1. Find the best parallel candidate: the lowest-vTID non-syscall
	// action whose thread holds its process token.
	var parallel *kernel.Thread
	parV := int(^uint(0) >> 1)
	for _, t := range pending {
		if t.ActionIsSyscall() {
			continue
		}
		if !s.holdsToken(t) {
			continue
		}
		if v := s.vtid[t]; v < parV {
			parallel, parV = t, v
		}
	}

	// 2. Enqueue newly arrived syscall stops into Runnable at their logical
	// arrival position.
	for _, t := range pending {
		if t.ActionIsSyscall() && !s.inRunnable[t] && s.holdsToken(t) {
			s.insertRunnable(arrival{t: t, key: t.LClock})
			s.inRunnable[t] = true
		}
	}

	// 3. Alternate between parallel bookkeeping and the Runnable front so a
	// compute-bound thread cannot starve system call servicing (and vice
	// versa). The alternation is a turn counter — logical history only.
	s.turn++
	if parallel != nil && (len(s.runnable) == 0 || s.turn%2 == 0) {
		return s.picked(s.pickParallel(parallel, pending, k), pickedParallel)
	}
	if len(s.runnable) > 0 {
		t := s.runnable[0].t
		s.runnable = s.runnable[1:]
		delete(s.inRunnable, t)
		return s.picked(t, pickedRunnable)
	}
	if parallel != nil {
		return s.picked(s.pickParallel(parallel, pending, k), pickedParallel)
	}

	// 4. Nothing runnable: revisit the Blocked queue fairly. Each visit
	// replays the front call in non-blocking form; if the whole container
	// is otherwise idle and nothing can complete, give up so the kernel can
	// fire timers or declare deadlock.
	parked := k.Parked()
	if len(parked) > 0 {
		anyReady := false
		for _, t := range parked {
			if k.ParkedReady(t) {
				anyReady = true
				break
			}
		}
		if !anyReady && len(pending) == 0 {
			return nil
		}
		i := s.blockedRotor % len(parked)
		s.blockedRotor++
		return s.picked(parked[i], pickedBlocked)
	}
	return nil
}

// pickParallel returns the parallel candidate after running the busy-wait
// check: a token holder making syscall-free progress while a sibling is
// waiting for the token is a spinner the serialized-thread scheduler will
// never preempt (§5.9).
func (s *Scheduler) pickParallel(t *kernel.Thread, pending []*kernel.Thread, k *kernel.Kernel) *kernel.Thread {
	if s.siblingStarved(t, pending, k) {
		t.SpinCount++
		if t.SpinCount > s.SpinLimit {
			s.Err = ErrBusyWait
			return nil
		}
	} else {
		t.SpinCount = 0
	}
	return t
}

// siblingStarved reports whether another thread of t's process is waiting
// to run (pending or parked) while t holds the token. Under Workspace mode
// a parked sibling whose wake condition has not fired is exempt: it is a
// merge-barrier waiter (futex join) the workspace scheduler will release,
// not a starved thread. A parked sibling that is already ParkedReady — its
// condition holds but the spinning token holder keeps winning the parallel
// pick — still counts, so genuine busy-waits abort identically in both
// modes.
func (s *Scheduler) siblingStarved(t *kernel.Thread, pending []*kernel.Thread, k *kernel.Kernel) bool {
	for _, o := range pending {
		if o != t && o.Proc == t.Proc {
			return true
		}
	}
	for _, o := range k.Parked() {
		if o != t && o.Proc == t.Proc {
			if s.Workspace && !k.ParkedReady(o) {
				continue
			}
			return true
		}
	}
	return false
}

// NoteWrite records that t, while holding the token, performed an FS or
// memory-map write. A writer is by definition making progress toward the
// condition a waiting sibling blocks on, so its spin count restarts — this
// is the §5.9 false-positive fix: previously the count only reset when no
// sibling waited at all, so a token holder looping Allow-verdict writes
// (mkdir/rename/brk in a hot loop) with a parked sibling was eventually
// misdeclared a busy-waiter.
func (s *Scheduler) NoteWrite(t *kernel.Thread) {
	t.SpinCount = 0
}

// insertRunnable places a at its (key, vTID) position, stable.
func (s *Scheduler) insertRunnable(a arrival) {
	i := len(s.runnable)
	for i > 0 {
		prev := s.runnable[i-1]
		if prev.key < a.key || (prev.key == a.key && s.vtid[prev.t] <= s.vtid[a.t]) {
			break
		}
		i--
	}
	s.runnable = append(s.runnable, arrival{})
	copy(s.runnable[i+1:], s.runnable[i:])
	s.runnable[i] = a
}
