package sched

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
)

// Scheduling decisions that need live syscall stops are covered by the
// integration tests in internal/core and internal/buildsim; these unit tests
// pin down the pure bookkeeping: vTID assignment, token hand-off and
// lifecycle cleanup, using bare thread structs.

func fabricate(n int) (*kernel.Proc, []*kernel.Thread) {
	p := &kernel.Proc{}
	var ts []*kernel.Thread
	for i := 0; i < n; i++ {
		t := &kernel.Thread{TID: 100 + i, Proc: p}
		p.Threads = append(p.Threads, t)
		ts = append(ts, t)
	}
	return p, ts
}

func TestRegisterAssignsSequentialVTIDs(t *testing.T) {
	s := New()
	_, ts := fabricate(3)
	for _, th := range ts {
		s.Register(th)
	}
	for i, th := range ts {
		if s.VTID(th) != i {
			t.Errorf("vtid[%d] = %d", i, s.VTID(th))
		}
	}
	// Idempotent.
	s.Register(ts[1])
	if s.VTID(ts[1]) != 1 {
		t.Errorf("re-registration changed vtid")
	}
}

func TestVTIDsIndependentOfHostTIDs(t *testing.T) {
	// Two runs whose host TIDs differ wildly must assign the same vTIDs in
	// registration order — that is the whole point.
	for run := 0; run < 2; run++ {
		s := New()
		p := &kernel.Proc{}
		for i := 0; i < 4; i++ {
			th := &kernel.Thread{TID: 1000*run + 7*i + 3, Proc: p}
			p.Threads = append(p.Threads, th)
			s.Register(th)
			if s.VTID(th) != i {
				t.Fatalf("run %d: vtid = %d, want %d", run, s.VTID(th), i)
			}
		}
	}
}

func TestTokenRotationSkipsDeadThreads(t *testing.T) {
	s := New()
	_, ts := fabricate(3)
	for _, th := range ts {
		s.Register(th)
	}
	if !s.holdsToken(ts[0]) {
		t.Fatal("first claimant should get the token")
	}
	if s.holdsToken(ts[1]) {
		t.Fatal("second thread must not steal the token")
	}
	s.ReleaseToken(ts[0])
	if !s.holdsToken(ts[1]) {
		t.Fatal("token should pass to the next vTID")
	}
	// Kill ts[2]; release from ts[1] must wrap to ts[0], skipping the dead.
	s.Unregister(ts[2])
	s.ReleaseToken(ts[1])
	if !s.holdsToken(ts[0]) {
		t.Fatal("token should wrap to ts[0], skipping the unregistered thread")
	}
}

func TestUnregisterReleasesHeldToken(t *testing.T) {
	s := New()
	_, ts := fabricate(2)
	s.Register(ts[0])
	s.Register(ts[1])
	if !s.holdsToken(ts[0]) {
		t.Fatal("claim failed")
	}
	s.Unregister(ts[0])
	if !s.holdsToken(ts[1]) {
		t.Fatal("token stuck with an unregistered thread")
	}
}

func TestSingleThreadAlwaysHoldsToken(t *testing.T) {
	s := New()
	_, ts := fabricate(1)
	s.Register(ts[0])
	for i := 0; i < 3; i++ {
		if !s.holdsToken(ts[0]) {
			t.Fatal("single-threaded processes are never token-gated")
		}
		s.ReleaseToken(ts[0])
	}
}

func TestInsertRunnableOrdersByLogicalArrival(t *testing.T) {
	s := New()
	_, ts := fabricate(4)
	for _, th := range ts {
		s.Register(th)
	}
	s.insertRunnable(arrival{t: ts[0], key: 300})
	s.insertRunnable(arrival{t: ts[1], key: 100})
	s.insertRunnable(arrival{t: ts[2], key: 200})
	s.insertRunnable(arrival{t: ts[3], key: 200}) // tie: higher vTID after
	want := []*kernel.Thread{ts[1], ts[2], ts[3], ts[0]}
	for i, a := range s.runnable {
		if a.t != want[i] {
			t.Fatalf("position %d: got vtid %d", i, s.VTID(a.t))
		}
	}
}

func TestPickNilOnEmpty(t *testing.T) {
	s := New()
	k := kernel.New(kernel.Config{Profile: machine.CloudLabC220G5(), Seed: 1})
	if got := s.Pick(k, nil); got != nil {
		t.Errorf("Pick on empty = %v", got)
	}
	if s.Requests != 1 {
		t.Errorf("requests = %d", s.Requests)
	}
}
