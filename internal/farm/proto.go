package farm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/obs"
)

// NodeID identifies one farm node. The coordinator is node 0; worker nodes
// are numbered 1..N in registration order (their "ordinal").
type NodeID int32

// Coordinator is the well-known node ID of the coordinator.
const Coordinator NodeID = 0

// MsgType tags one protocol message. The protocol is strict request/response:
// every Send carries a request type and returns the matching response type
// (or MsgErr). See DESIGN.md §4e for the full wire specification.
type MsgType uint8

const (
	// MsgRegister: worker -> coordinator. Advertises capacity (Slots) and
	// pinned image hashes (Pinned). Response: MsgRegisterAck carrying the
	// worker's assigned ordinal in Ordinal.
	MsgRegister MsgType = iota + 1
	MsgRegisterAck
	// MsgAssign: coordinator -> worker. Assigns one build job (Job, Attempt,
	// Image, Config; Wall carries the virtual time of the previous attempt's
	// death for recovery accounting). Response: MsgResult with Status "ok"
	// and the output Digest, or Status "crashed" with Wall = virtual time of
	// death, or Status "down" if the worker has already failed.
	MsgAssign
	MsgResult
	// MsgSealPut: worker -> coordinator. Publishes a checkpoint seal into the
	// content-addressed store (Image, Config, Job, Ordinal, Digest; the seal
	// body rides in Val in-process, by content address over the wire).
	// Response: MsgSealAck.
	MsgSealPut
	MsgSealAck
	// MsgSealGet: worker -> coordinator. Fetches the seal at (Image, Config,
	// Job, Ordinal); Ordinal 0 means "the freshest". Response: MsgSealData
	// with the found Ordinal and Digest, or Status "miss".
	MsgSealGet
	MsgSealData
	// MsgStateGet: worker -> coordinator. Fetches prepared state (a kernel
	// snapshot or container template) at (Image, Config). On a miss the
	// coordinator leases the build to the first requester (Status "lease");
	// concurrent requesters block until the leaseholder's MsgStatePut lands.
	// Response: MsgStateData.
	MsgStateGet
	MsgStateData
	// MsgStatePut: worker -> coordinator. Publishes prepared state built
	// under a lease. Response: MsgStateAck.
	MsgStatePut
	MsgStateAck
	// MsgDown: worker -> coordinator. Reports the worker is leaving the farm
	// (after a planned node crash). Response: MsgDownAck.
	MsgDown
	MsgDownAck
	// MsgCosign: coordinator -> worker. Asks the worker to co-sign a sealed
	// transparency-log epoch (Digest carries the block hash, Job the epoch
	// index). Response: MsgCosignAck with Sig, or Status "withheld" when the
	// Byzantine plan makes this worker drop co-signatures.
	MsgCosign
	MsgCosignAck
	// MsgErr is the error response to any malformed or unroutable request.
	MsgErr
)

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgRegister:
		return "register"
	case MsgRegisterAck:
		return "register-ack"
	case MsgAssign:
		return "assign"
	case MsgResult:
		return "result"
	case MsgSealPut:
		return "seal-put"
	case MsgSealAck:
		return "seal-ack"
	case MsgSealGet:
		return "seal-get"
	case MsgSealData:
		return "seal-data"
	case MsgStateGet:
		return "state-get"
	case MsgStateData:
		return "state-data"
	case MsgStatePut:
		return "state-put"
	case MsgStateAck:
		return "state-ack"
	case MsgDown:
		return "down"
	case MsgDownAck:
		return "down-ack"
	case MsgCosign:
		return "cosign"
	case MsgCosignAck:
		return "cosign-ack"
	case MsgErr:
		return "err"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// Envelope is the one message shape of the protocol: a flat, fixed field set
// every message type draws from, so the codec is a single function and fuzzing
// the round-trip covers the whole protocol. Unused fields are zero and omitted
// on the JSON wire.
type Envelope struct {
	Type MsgType `json:"type"`
	From NodeID  `json:"from"`
	To   NodeID  `json:"to"`
	// Seq is the per-link message ordinal, stamped by the transport. Fault
	// schedules (message loss, duplication) key on Seq, so faults fire at the
	// same logical instant regardless of host-level interleaving.
	Seq uint64 `json:"seq,omitempty"`
	// Idem is the idempotency key: a pure hash of the message's semantic
	// identity (type, origin, job, attempt, content address). At-least-once
	// delivery plus receiver-side Idem dedup yields exactly-once effect.
	Idem    uint64 `json:"idem,omitempty"`
	Job     uint64 `json:"job,omitempty"`
	Attempt int32  `json:"attempt,omitempty"`
	Image   uint64 `json:"image,omitempty"`
	Config  uint64 `json:"config,omitempty"`
	Ordinal int32  `json:"ordinal,omitempty"`
	Digest  uint64 `json:"digest,omitempty"`
	// Wall is a virtual-clock timestamp (ns): time of death in a "crashed"
	// MsgResult, previous attempt's death in a recovery MsgAssign.
	Wall  int64 `json:"wall,omitempty"`
	Slots int32 `json:"slots,omitempty"`
	// Doom marks a MsgAssign whose build the farm fault plan kills: the
	// coordinator decides doom at placement time (the plan's KillAtJob-th
	// job placed on the killed node), so the crash site is a pure function
	// of the schedule, not of slot interleaving.
	Doom bool `json:"doom,omitempty"`
	// Source is the attestation subject's source Merkle root — distinct from
	// Image, which is the farm-level placement/content hash. Together with
	// Config, Digest (output) and Ring it reconstructs the attest.Statement a
	// result or rebuild response certifies.
	Source uint64 `json:"source,omitempty"`
	// Ring is the run's logical flight-recorder digest (attestation field).
	Ring uint64 `json:"ring,omitempty"`
	// Rebuild marks a MsgAssign as an independent re-execution for the
	// attestation quorum: the worker builds and attests but the result is
	// admission evidence, not farm output.
	Rebuild bool     `json:"rebuild,omitempty"`
	Pinned  []uint64 `json:"pinned,omitempty"`
	Status  string   `json:"status,omitempty"`
	// Sig is an ed25519 attestation or epoch co-signature (attest package).
	Sig []byte `json:"sig,omitempty"`
	// Val is the in-process body reference (a kernel snapshot, container
	// template or checkpoint seal). It never crosses a real wire: both codecs
	// carry only the content address (Image, Config, Job, Ordinal, Digest),
	// and a remote node materialises the body from its shard of the
	// content-addressed cache. In-process, Val is the shared pointer itself.
	Val any `json:"-"`
}

// IdemKey derives the envelope's idempotency key from its semantic identity.
// Seq is deliberately excluded: a retransmission gets a fresh Seq but the
// same Idem, which is exactly what lets the receiver deduplicate it.
func (e *Envelope) IdemKey() uint64 {
	return obs.DigestU64(uint64(e.Type),
		uint64(uint32(e.From)), e.Job, uint64(uint32(e.Attempt)),
		e.Image, e.Config, uint64(uint32(e.Ordinal)), e.Digest)
}

// envWireSize is the fixed portion of the binary encoding; Status, Pinned
// and Sig are length-prefixed tails.
const envWireSize = 1 + 4 + 4 + 8 + 8 + 8 + 4 + 8 + 8 + 4 + 8 + 8 + 4 + 1 + 8 + 8 + 1

// MarshalBinary encodes the envelope in the compact little-endian wire
// format (Val, the in-process body, is not encoded — see Envelope.Val).
func (e *Envelope) MarshalBinary() []byte {
	buf := make([]byte, 0, envWireSize+2+len(e.Status)+2+8*len(e.Pinned)+2+len(e.Sig))
	buf = append(buf, byte(e.Type))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, e.Idem)
	buf = binary.LittleEndian.AppendUint64(buf, e.Job)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Attempt))
	buf = binary.LittleEndian.AppendUint64(buf, e.Image)
	buf = binary.LittleEndian.AppendUint64(buf, e.Config)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Ordinal))
	buf = binary.LittleEndian.AppendUint64(buf, e.Digest)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Wall))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Slots))
	var doom byte
	if e.Doom {
		doom = 1
	}
	buf = append(buf, doom)
	buf = binary.LittleEndian.AppendUint64(buf, e.Source)
	buf = binary.LittleEndian.AppendUint64(buf, e.Ring)
	var rebuild byte
	if e.Rebuild {
		rebuild = 1
	}
	buf = append(buf, rebuild)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Status)))
	buf = append(buf, e.Status...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Pinned)))
	for _, p := range e.Pinned {
		buf = binary.LittleEndian.AppendUint64(buf, p)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Sig)))
	buf = append(buf, e.Sig...)
	return buf
}

// DecodeEnvelope decodes the binary wire format produced by MarshalBinary.
func DecodeEnvelope(buf []byte) (*Envelope, error) {
	if len(buf) < envWireSize+6 {
		return nil, fmt.Errorf("farm: short envelope: %d bytes", len(buf))
	}
	e := &Envelope{}
	e.Type = MsgType(buf[0])
	e.From = NodeID(binary.LittleEndian.Uint32(buf[1:]))
	e.To = NodeID(binary.LittleEndian.Uint32(buf[5:]))
	e.Seq = binary.LittleEndian.Uint64(buf[9:])
	e.Idem = binary.LittleEndian.Uint64(buf[17:])
	e.Job = binary.LittleEndian.Uint64(buf[25:])
	e.Attempt = int32(binary.LittleEndian.Uint32(buf[33:]))
	e.Image = binary.LittleEndian.Uint64(buf[37:])
	e.Config = binary.LittleEndian.Uint64(buf[45:])
	e.Ordinal = int32(binary.LittleEndian.Uint32(buf[53:]))
	e.Digest = binary.LittleEndian.Uint64(buf[57:])
	e.Wall = int64(binary.LittleEndian.Uint64(buf[65:]))
	e.Slots = int32(binary.LittleEndian.Uint32(buf[73:]))
	e.Doom = buf[77] != 0
	e.Source = binary.LittleEndian.Uint64(buf[78:])
	e.Ring = binary.LittleEndian.Uint64(buf[86:])
	e.Rebuild = buf[94] != 0
	off := envWireSize
	slen := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) < off+slen+4 {
		return nil, fmt.Errorf("farm: envelope truncated in status")
	}
	if slen > 0 {
		e.Status = string(buf[off : off+slen])
	}
	off += slen
	plen := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) < off+8*plen+2 {
		return nil, fmt.Errorf("farm: envelope truncated in pinned")
	}
	if plen > 0 {
		e.Pinned = make([]uint64, plen)
		for i := range e.Pinned {
			e.Pinned[i] = binary.LittleEndian.Uint64(buf[off+8*i:])
		}
	}
	off += 8 * plen
	glen := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) != off+glen {
		return nil, fmt.Errorf("farm: envelope length %d, want %d", len(buf), off+glen)
	}
	if glen > 0 {
		e.Sig = append([]byte(nil), buf[off:]...)
	}
	return e, nil
}
