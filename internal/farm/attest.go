package farm

import (
	"sort"
	"sync"

	"repro/internal/attest"
	"repro/internal/derive"
	"repro/internal/obs"
)

// This file is the farm half of the Byzantine-robust attestation chain
// (DESIGN §4i). The coordinator drives quorum admission job by job: the
// primary's signed claim plus independent rebuilder re-executions, judged by
// replica.QuorumDissent over statement digests. Dissenters are named and
// quarantined — marked down, their queued jobs re-placed by the same
// rendezvous hashing that handles crashes — and admission retries with a
// widened pool under exponential virtual backoff, escalating to the
// coordinator as rebuilder of last resort. Admitted records are sealed into
// the epoch-batched transparency log at the end of the run and replicated
// across the log servers, with collective cosignatures gathered over the
// protocol (MsgCosign).
//
// Determinism is what makes all of this cheap and airtight: every honest
// participant computes the identical statement, so honesty needs no
// coordination and a lie is always a nameable minority.

const (
	// maxAdmitAttempts bounds the quorum retry loop before the coordinator
	// escalates to arbiter-of-last-resort.
	maxAdmitAttempts = 3
	// admitBackoffNs is the base of the exponential VIRTUAL backoff charged
	// per failed admission attempt (accounted, never slept — the farm has no
	// host-time dependence).
	admitBackoffNs = 1000
)

// attestPlane is the cluster's attestation state: the coordinator's signer,
// the deterministic keyring, the chain under construction, and the log
// replicas.
type attestPlane struct {
	cl     *Cluster
	l      obs.Local
	signer *attest.Signer // coordinator, ordinal 0
	ring   *attest.Keyring
	chain  *attest.Chain
	logs   []*attest.Server

	mu          sync.Mutex
	records     []attest.Record
	admitted    map[uint64]attest.Record // job ID -> admitted record
	quarantined map[int32]bool
	exercised   map[int32]bool // ordinals that have attested at least once
}

func newAttestPlane(cl *Cluster) *attestPlane {
	ap := &attestPlane{
		cl: cl, l: obs.NewLocal(),
		signer:      attest.NewSigner(0, cl.cfg.KeySeed),
		ring:        attest.NewKeyring(cl.cfg.Nodes, cl.cfg.KeySeed),
		chain:       attest.NewChain(),
		admitted:    make(map[uint64]attest.Record),
		quarantined: make(map[int32]bool),
		exercised:   make(map[int32]bool),
	}
	for i := 1; i <= cl.cfg.LogServers; i++ {
		if cl.cfg.Plan.EquivocateEpoch == i {
			ap.logs = append(ap.logs, attest.NewEquivocatingServer())
		} else {
			ap.logs = append(ap.logs, attest.NewServer())
		}
	}
	return ap
}

// lieMask is the per-ordinal output perturbation a lying builder signs.
// Distinct per ordinal, so even colluding liars cannot agree on one wrong
// value and can never form a quorum among themselves.
func lieMask(ord int) uint64 {
	return obs.DigestU64(0xBADB1D, uint64(ord)) | 1
}

// attestationFrom reconstructs the attestation an "ok" result or rebuild
// response carries (nil when the builder withheld it).
func attestationFrom(resp *Envelope, builder int32, role attest.Role) *attest.Attestation {
	if len(resp.Sig) == 0 {
		return nil
	}
	return &attest.Attestation{
		Statement: attest.Statement{
			Subject: derive.Key{Image: resp.Source, Config: resp.Config},
			Job:     resp.Job, Output: resp.Digest, Ring: resp.Ring,
		},
		Builder: builder, Role: role, Sig: resp.Sig,
	}
}

// rebuilders picks up to want not-yet-tried rebuilder ordinals for the job
// by rendezvous hashing over the live workers (primary excluded), appending
// the coordinator as rebuilder of last resort when the farm is too small.
func (ap *attestPlane) rebuilders(job Job, primary int32, want int, tried map[int32]bool) []int32 {
	co := ap.cl.co
	co.mu.Lock()
	live := co.liveLocked()
	co.mu.Unlock()
	type cand struct {
		ord int32
		w   uint64
	}
	var cands []cand
	for _, ord := range live {
		o := int32(ord)
		if o == primary || tried[o] {
			continue
		}
		cands = append(cands, cand{o, obs.DigestU64(ap.cl.cfg.KeySeed^0x5EB01D, job.ID, uint64(ord))})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].ord < cands[j].ord
	})
	var out []int32
	for _, c := range cands {
		if len(out) == want {
			break
		}
		out = append(out, c.ord)
	}
	if len(out) < want && !tried[0] {
		out = append(out, 0)
	}
	return out
}

// solicit obtains one independent rebuild attestation: inline on the
// coordinator for ordinal 0, over the protocol (a Rebuild-flagged MsgAssign)
// for workers. A withheld, failed or unroutable solicitation yields no vote.
func (ap *attestPlane) solicit(job Job, ord int32) *attest.Attestation {
	cl := ap.cl
	cl.c.rebuilds.Add(ap.l, 1)
	if ord == 0 {
		ctx := &ExecCtx{Node: Coordinator, Ord: 0, Job: job, Rebuild: true, c: cl}
		digest, err := cl.exec(ctx)
		if err != nil {
			return nil
		}
		st := ctx.Attest
		st.Job = job.ID
		st.Output = digest
		a := ap.signer.Attest(st, attest.RoleRebuilder)
		cl.c.attestations.Add(ap.l, 1)
		return &a
	}
	resp, err := cl.tr.Send(&Envelope{
		Type: MsgAssign, From: Coordinator, To: NodeID(ord),
		Job: job.ID, Image: job.Image, Config: job.Config, Rebuild: true,
	})
	if err != nil || resp.Status != "ok" {
		return nil
	}
	a := attestationFrom(resp, ord, attest.RoleRebuilder)
	if a == nil {
		cl.c.withholds.Add(ap.l, 1)
		return nil
	}
	cl.c.attestations.Add(ap.l, 1)
	return a
}

// admitJob runs the full admission pipeline for one completed job: widen the
// rebuilder pool under bounded retries with exponential virtual backoff
// until a k-of-n majority quorum forms (k = majority of the pool), escalate
// to the coordinator arbiter when it cannot, then quarantine every named
// dissenter and store the admitted record for epoch sealing.
func (ap *attestPlane) admitJob(job Job, primary int32, primAtt *attest.Attestation) {
	cl := ap.cl
	pool := []int32{primary}
	tried := map[int32]bool{primary: true}
	var atts []attest.Attestation
	if primAtt != nil {
		atts = append(atts, *primAtt)
		cl.c.attestations.Add(ap.l, 1)
	} else {
		cl.c.withholds.Add(ap.l, 1)
	}

	var adm attest.Admission
	for attempt := 0; attempt < maxAdmitAttempts; attempt++ {
		for _, ord := range ap.rebuilders(job, primary, cl.cfg.Rebuilders+attempt, tried) {
			tried[ord] = true
			pool = append(pool, ord)
			if a := ap.solicit(job, ord); a != nil {
				atts = append(atts, *a)
			}
		}
		adm = attest.Admit(ap.ring, pool, atts, len(pool)/2+1)
		if adm.OK {
			break
		}
		cl.c.admitRetries.Add(ap.l, 1)
		cl.c.backoffNs.Add(ap.l, admitBackoffNs<<attempt)
	}
	if !adm.OK {
		// Arbiter of last resort: the coordinator re-executes the build
		// itself and its statement decides — determinism makes any single
		// honest replica THE reference (replica.Reference), and the
		// coordinator is the log authority already. This is what keeps a
		// 1-worker farm with a lying worker from deadlocking admission.
		if !tried[0] {
			tried[0] = true
			pool = append(pool, 0)
			if a := ap.solicit(job, 0); a != nil {
				atts = append(atts, *a)
			}
		}
		adm = ap.arbiter(pool, atts)
	}

	for _, a := range atts {
		switch {
		case !ap.ring.Verify(a):
			cl.c.corrupts.Add(ap.l, 1)
		case adm.OK && a.Statement.Digest() != adm.Record.Statement.Digest():
			cl.c.lies.Add(ap.l, 1)
		}
	}
	for _, ord := range adm.Dissent {
		ap.quarantine(ord, job.ID)
	}
	ap.mu.Lock()
	for ord := range tried {
		ap.exercised[ord] = true
	}
	if adm.OK {
		ap.records = append(ap.records, adm.Record)
		ap.admitted[job.ID] = adm.Record
	}
	ap.mu.Unlock()
	cl.record(obs.KindAttest, int(primary), job.ID, int64(len(adm.Dissent)))
}

// arbiter admits the statement matching the coordinator's own re-execution:
// every valid attestation agreeing with it co-signs, everything else in the
// pool dissents. Used only when no majority quorum formed within the retry
// budget.
func (ap *attestPlane) arbiter(pool []int32, atts []attest.Attestation) attest.Admission {
	var ref *attest.Attestation
	for i := range atts {
		if atts[i].Builder == 0 && ap.ring.Verify(atts[i]) {
			ref = &atts[i]
			break
		}
	}
	if ref == nil {
		// The coordinator itself could not rebuild: admit nothing, dissent
		// everyone — the job stays unattested rather than wrongly admitted.
		adm := attest.Admission{}
		adm.Dissent = append(adm.Dissent, pool...)
		sort.Slice(adm.Dissent, func(i, j int) bool { return adm.Dissent[i] < adm.Dissent[j] })
		return adm
	}
	agree := map[int32]bool{}
	for _, a := range atts {
		if ap.ring.Verify(a) && a.Statement.Digest() == ref.Statement.Digest() {
			agree[a.Builder] = true
		}
	}
	adm := attest.Admission{OK: true}
	adm.Record.Statement = ref.Statement
	for _, ord := range pool {
		if agree[ord] {
			adm.Record.Cosigners = append(adm.Record.Cosigners, ord)
		} else {
			adm.Dissent = append(adm.Dissent, ord)
		}
	}
	sort.Slice(adm.Record.Cosigners, func(i, j int) bool { return adm.Record.Cosigners[i] < adm.Record.Cosigners[j] })
	sort.Slice(adm.Dissent, func(i, j int) bool { return adm.Dissent[i] < adm.Dissent[j] })
	adm.Record.Dissent = adm.Dissent
	return adm
}

// quarantine names a Byzantine builder: the node is marked down and its
// queued jobs are re-placed among the survivors by the same rendezvous
// hashing that rescues crashed nodes' work.
func (ap *attestPlane) quarantine(ord int32, job uint64) {
	if ord <= 0 {
		return
	}
	ap.mu.Lock()
	if ap.quarantined[ord] {
		ap.mu.Unlock()
		return
	}
	ap.quarantined[ord] = true
	ap.mu.Unlock()
	cl := ap.cl
	cl.c.quarantines.Add(ap.l, 1)
	cl.record(obs.KindQuarantine, int(ord), job, 0)
	co := cl.co
	co.mu.Lock()
	if n, ok := co.nodes[NodeID(ord)]; ok && !n.down {
		n.down = true
		moved := n.queue
		n.queue = nil
		if len(moved) > 0 {
			co.stealLocked(moved, int(ord))
		}
		co.cond.Broadcast()
	}
	co.mu.Unlock()
}

// audit closes the detection gap for Byzantine workers that never happened
// to build or rebuild anything: every live, never-exercised worker is asked
// to rebuild the first job, and its attestation is checked against the
// admitted record. A refusal, an invalid signature or a mismatching digest
// names the node.
func (ap *attestPlane) audit(jobs []Job) {
	if len(jobs) == 0 {
		return
	}
	ap.mu.Lock()
	rec, ok := ap.admitted[jobs[0].ID]
	ap.mu.Unlock()
	if !ok {
		return
	}
	co := ap.cl.co
	co.mu.Lock()
	live := co.liveLocked()
	co.mu.Unlock()
	for _, ord := range live {
		o := int32(ord)
		ap.mu.Lock()
		done := ap.exercised[o]
		ap.exercised[o] = true
		ap.mu.Unlock()
		if done {
			continue
		}
		a := ap.solicit(jobs[0], o)
		switch {
		case a == nil:
			ap.quarantine(o, jobs[0].ID)
		case !ap.ring.Verify(*a):
			ap.cl.c.corrupts.Add(ap.l, 1)
			ap.quarantine(o, jobs[0].ID)
		case a.Statement.Digest() != rec.Statement.Digest():
			ap.cl.c.lies.Add(ap.l, 1)
			ap.quarantine(o, jobs[0].ID)
		}
	}
}

// quarantinedOrds returns the quarantined ordinals sorted ascending.
func (ap *attestPlane) quarantinedOrds() []int {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	var out []int
	for ord := range ap.quarantined {
		out = append(out, int(ord))
	}
	sort.Ints(out)
	return out
}

// sealEpochs closes the run: admitted records, sorted by job so the chain is
// a pure function of the admitted set, are batched into epochs, collectively
// cosigned by the coordinator and every live honest worker over MsgCosign,
// and replicated to every log server.
func (ap *attestPlane) sealEpochs() {
	cl := ap.cl
	ap.mu.Lock()
	records := append([]attest.Record(nil), ap.records...)
	ap.mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Job < records[j].Job })

	co := cl.co
	co.mu.Lock()
	live := co.liveLocked()
	co.mu.Unlock()
	participants := []int32{0}
	for _, ord := range live {
		participants = append(participants, int32(ord))
	}

	for off := 0; off < len(records); off += cl.cfg.EpochSize {
		end := off + cl.cfg.EpochSize
		if end > len(records) {
			end = len(records)
		}
		e := ap.chain.Seal(records[off:end], participants)
		h := e.BlockHash()
		e.Cosigs = append(e.Cosigs, attest.Cosig{Ord: 0, Sig: ap.signer.Cosign(h)})
		cl.c.cosigns.Add(ap.l, 1)
		for _, ord := range participants[1:] {
			resp, err := cl.tr.Send(&Envelope{
				Type: MsgCosign, From: Coordinator, To: NodeID(ord),
				Job: uint64(e.Index), Digest: h,
			})
			if err != nil || resp.Status == "withheld" || len(resp.Sig) == 0 {
				cl.c.withholds.Add(ap.l, 1)
				continue
			}
			if !ap.ring.VerifyCosign(ord, h, resp.Sig) {
				cl.c.corrupts.Add(ap.l, 1)
				continue
			}
			e.Cosigs = append(e.Cosigs, attest.Cosig{Ord: ord, Sig: resp.Sig})
			cl.c.cosigns.Add(ap.l, 1)
		}
		for _, s := range ap.logs {
			s.Append(e)
		}
		cl.c.epochs.Add(ap.l, 1)
		cl.record(obs.KindEpochSeal, 0, uint64(e.Index), int64(end-off))
	}
}
