package farm

import (
	"sort"
	"sync"

	"repro/internal/attest"
	"repro/internal/derive"
	"repro/internal/obs"
)

// pending is one job waiting in a node's queue.
type pending struct {
	job        Job
	attempt    int
	prevWall   int64
	stolenFrom int
	doom       bool
}

// nodeState is the coordinator's view of one registered worker.
type nodeState struct {
	id    NodeID
	slots int
	pins  []uint64
	down  bool
	queue []pending
}

// coordinator schedules jobs across registered workers, rebalances on
// failure, and fronts the content-addressed store. Placement is static and
// pure — rendezvous hashing of (placement seed, job affinity, worker
// ordinal) with a pinned-image bonus — so the schedule is a function of the
// job list and the seed, never of execution timing. When a worker dies its
// unfinished jobs are re-placed among the survivors ("stolen"); the crashed
// job itself returns with attempt+1 so the executor recovers it from the
// freshest seal in the store. With no survivors left the coordinator runs
// the remainder inline (local fallback).
type coordinator struct {
	cl     *Cluster
	shards *Shards
	l      obs.Local

	mu        sync.Mutex
	cond      *sync.Cond
	nodes     map[NodeID]*nodeState
	order     []NodeID
	remaining int
	fallback  []pending
	reports   []JobReport
}

func newCoordinator(cl *Cluster, shards *Shards) *coordinator {
	co := &coordinator{cl: cl, shards: shards, l: obs.NewLocal(),
		nodes: make(map[NodeID]*nodeState)}
	co.cond = sync.NewCond(&co.mu)
	return co
}

// placeWeight is the rendezvous weight of one (job, node) pair. The top bit
// is reserved for the pinned-image bonus, so any pinned candidate outranks
// every unpinned one while ties within each class still break by hash.
func placeWeight(seed, affinity uint64, ord int) uint64 {
	return obs.DigestU64(seed, affinity, uint64(ord)) &^ (1 << 63)
}

// Place is the farm's placement function, exported for callers that need to
// predict a schedule (cmd/reprotest's -kill-node 0 auto-picks the node a
// job lands on): the highest-weight live ordinal wins, lower ordinal on a
// tie. It matches the coordinator's choice exactly when no worker pins the
// job's image; a pinned worker additionally gains the reserved top-bit
// bonus.
func Place(seed, affinity uint64, live []int) int {
	best, bestW := 0, uint64(0)
	for _, ord := range live {
		w := placeWeight(seed, affinity, ord)
		if best == 0 || w > bestW {
			best, bestW = ord, w
		}
	}
	return best
}

func (co *coordinator) liveLocked() []int {
	var live []int
	for _, id := range co.order {
		if !co.nodes[id].down {
			live = append(live, int(id))
		}
	}
	sort.Ints(live)
	return live
}

func (co *coordinator) placeLocked(j Job, live []int) int {
	best, bestW := 0, uint64(0)
	for _, ord := range live {
		w := placeWeight(co.cl.cfg.PlacementSeed, j.Affinity, ord)
		n := co.nodes[NodeID(ord)]
		for _, p := range n.pins {
			if p == j.Image && j.Image != 0 {
				w |= 1 << 63
				break
			}
		}
		if best == 0 || w > bestW {
			best, bestW = ord, w
		}
	}
	return best
}

// dispatch places every job, serves the queues through the workers' slot
// loops, then drains any fallback remainder inline. Blocks until all
// reports are in.
func (co *coordinator) dispatch(jobs []Job) []JobReport {
	co.mu.Lock()
	live := co.liveLocked()
	kill := co.cl.cfg.Plan.KillNode
	for _, j := range jobs {
		ord := co.placeLocked(j, live)
		if ord == 0 {
			// No workers at all: everything falls back to the coordinator.
			co.fallback = append(co.fallback, pending{job: j})
			continue
		}
		n := co.nodes[NodeID(ord)]
		p := pending{job: j}
		if ord == kill && len(n.queue)+1 == co.cl.cfg.Plan.KillAtJob {
			p.doom = true
		}
		n.queue = append(n.queue, p)
		co.remaining++
		co.cl.record(obs.KindFarmAssign, ord, j.ID, 0)
	}
	co.mu.Unlock()

	var wg sync.WaitGroup
	co.mu.Lock()
	order := append([]NodeID(nil), co.order...)
	slots := make(map[NodeID]int, len(order))
	for _, id := range order {
		slots[id] = co.nodes[id].slots
	}
	co.mu.Unlock()
	for _, id := range order {
		for s := 0; s < slots[id]; s++ {
			wg.Add(1)
			go func(id NodeID) {
				defer wg.Done()
				co.serve(id)
			}(id)
		}
	}
	wg.Wait()

	co.mu.Lock()
	fb := co.fallback
	co.fallback = nil
	co.mu.Unlock()
	for _, p := range fb {
		co.runLocal(p)
	}
	return co.reports
}

// serve is one worker slot: it pulls from the node's queue, sends the
// assignment over the transport, and folds the result in. Exits when the
// node is down or no work remains anywhere.
func (co *coordinator) serve(id NodeID) {
	for {
		co.mu.Lock()
		n := co.nodes[id]
		for !n.down && co.remaining > 0 && len(n.queue) == 0 {
			co.cond.Wait()
		}
		if n.down || co.remaining == 0 {
			co.mu.Unlock()
			return
		}
		p := n.queue[0]
		n.queue = n.queue[1:]
		co.mu.Unlock()

		co.cl.c.assigns.Add(co.l, 1)
		resp, err := co.cl.tr.Send(&Envelope{
			Type: MsgAssign, From: Coordinator, To: id,
			Job: p.job.ID, Attempt: int32(p.attempt),
			Image: p.job.Image, Config: p.job.Config,
			Wall: p.prevWall, Doom: p.doom,
		})
		if err != nil {
			// Unroutable node: treat like a refused assignment.
			resp = &Envelope{Type: MsgResult, Status: "down"}
		}
		co.result(id, p, resp)
	}
}

// result folds one MsgResult into coordinator state.
func (co *coordinator) result(id NodeID, p pending, resp *Envelope) {
	co.cl.c.results.Add(co.l, 1)
	switch resp.Status {
	case "ok":
		co.mu.Lock()
		co.reports = append(co.reports, JobReport{
			Job: p.job.ID, Node: int(id), Attempts: p.attempt + 1,
			StolenFrom: p.stolenFrom, Recovered: p.attempt > 0,
			SealOrd: int(resp.Ordinal), Digest: resp.Digest,
		})
		co.cl.c.nodeJobs.Add(int(id), 1)
		if p.attempt > 0 {
			co.cl.c.recovers.Add(co.l, 1)
			if resp.Ordinal == 0 {
				co.cl.c.coldRuns.Add(co.l, 1)
			}
			co.cl.record(obs.KindFarmRecover, int(id), p.job.ID, int64(resp.Ordinal))
		}
		co.remaining--
		if co.remaining == 0 {
			co.cond.Broadcast()
		}
		co.mu.Unlock()
		if co.cl.at != nil {
			// Quorum-admit the completed job: the primary's signed claim
			// (possibly withheld or a lie) against independent rebuilds.
			co.cl.at.admitJob(p.job, int32(id),
				attestationFrom(resp, int32(id), attest.RolePrimary))
		}
	case "crashed":
		co.cl.c.crashes.Add(co.l, 1)
		co.mu.Lock()
		n := co.nodes[id]
		n.down = true
		moved := n.queue
		n.queue = nil
		retry := pending{job: p.job, attempt: p.attempt + 1,
			prevWall: resp.Wall, stolenFrom: int(id)}
		co.stealLocked(append([]pending{retry}, moved...), int(id))
		co.cond.Broadcast()
		co.mu.Unlock()
	case "down":
		// The worker refused the assignment (it died between placement and
		// delivery); re-place just this job, attempt unchanged.
		co.mu.Lock()
		co.nodes[id].down = true
		p.stolenFrom = int(id)
		co.stealLocked([]pending{p}, int(id))
		co.cond.Broadcast()
		co.mu.Unlock()
	default:
		co.mu.Lock()
		co.reports = append(co.reports, JobReport{
			Job: p.job.ID, Node: int(id), Attempts: p.attempt + 1,
			StolenFrom: p.stolenFrom, Err: resp.Status,
		})
		co.remaining--
		if co.remaining == 0 {
			co.cond.Broadcast()
		}
		co.mu.Unlock()
	}
}

// stealLocked re-places jobs rescued from a dead node among the survivors;
// with none left they join the coordinator's local-fallback queue. Caller
// holds co.mu.
func (co *coordinator) stealLocked(ps []pending, deadOrd int) {
	live := co.liveLocked()
	for _, p := range ps {
		p.stolenFrom = deadOrd
		co.cl.c.steals.Add(co.l, 1)
		if len(live) == 0 {
			co.fallback = append(co.fallback, p)
			co.remaining--
			co.cl.record(obs.KindFarmSteal, 0, p.job.ID, int64(deadOrd))
			continue
		}
		ord := co.placeLocked(p.job, live)
		co.nodes[NodeID(ord)].queue = append(co.nodes[NodeID(ord)].queue, p)
		co.cl.record(obs.KindFarmSteal, ord, p.job.ID, int64(deadOrd))
	}
}

// runLocal executes one fallback job inline on the coordinator — the
// degenerate farm every worker has left.
func (co *coordinator) runLocal(p pending) {
	ctx := &ExecCtx{
		Node: Coordinator, Ord: 0, Job: p.job,
		Attempt: p.attempt, PrevWall: p.prevWall, c: co.cl,
	}
	digest, err := co.cl.exec(ctx)
	co.cl.c.fallbacks.Add(co.l, 1)
	rep := JobReport{
		Job: p.job.ID, Node: 0, Attempts: p.attempt + 1,
		StolenFrom: p.stolenFrom, Recovered: p.attempt > 0,
		SealOrd: ctx.RestoredFrom, Digest: digest,
	}
	if err != nil {
		rep.Err = err.Error()
		rep.Digest = 0
	}
	co.mu.Lock()
	co.reports = append(co.reports, rep)
	co.cl.c.nodeJobs.Add(0, 1)
	if p.attempt > 0 && err == nil {
		co.cl.c.recovers.Add(co.l, 1)
		if ctx.RestoredFrom == 0 {
			co.cl.c.coldRuns.Add(co.l, 1)
		}
		co.cl.record(obs.KindFarmRecover, 0, p.job.ID, int64(ctx.RestoredFrom))
	}
	co.mu.Unlock()
	if co.cl.at != nil && err == nil {
		// The coordinator is the primary for fallback jobs: it signs its own
		// statement and admission proceeds as usual (a degenerate pool when
		// no workers survive).
		st := ctx.Attest
		st.Job = p.job.ID
		st.Output = digest
		a := co.cl.at.signer.Attest(st, attest.RolePrimary)
		co.cl.at.admitJob(p.job, 0, &a)
	}
}

// Receive implements Receiver: the coordinator's half of the protocol —
// registration and the content-addressed store. Every handler is idempotent
// by construction (re-registration is a no-op, puts are first-wins, gets are
// reads), so duplicate deliveries need no idem cache here.
func (co *coordinator) Receive(env *Envelope) *Envelope {
	switch env.Type {
	case MsgRegister:
		co.mu.Lock()
		if _, ok := co.nodes[env.From]; !ok {
			co.nodes[env.From] = &nodeState{
				id: env.From, slots: int(env.Slots), pins: env.Pinned,
			}
			co.order = append(co.order, env.From)
		}
		co.mu.Unlock()
		return &Envelope{Type: MsgRegisterAck, From: Coordinator, To: env.From,
			Ordinal: int32(env.From)}
	case MsgSealPut:
		co.cl.c.sealPuts.Add(co.l, 1)
		co.shards.PutSeal(derive.SealKey{
			State: derive.KeyFor(env.Image, env.Config), Job: env.Job,
			Ordinal: int(env.Ordinal),
		}, env.Val, env.Digest)
		return &Envelope{Type: MsgSealAck, From: Coordinator, To: env.From}
	case MsgSealGet:
		co.cl.c.sealGets.Add(co.l, 1)
		key := derive.KeyFor(env.Image, env.Config)
		ord := int(env.Ordinal)
		if ord == 0 {
			ord = co.shards.Latest(key, env.Job)
		}
		if ord == 0 {
			return &Envelope{Type: MsgSealData, From: Coordinator, To: env.From,
				Status: "miss"}
		}
		val, digest, ok := co.shards.Seal(derive.SealKey{State: key, Job: env.Job, Ordinal: ord})
		if !ok {
			return &Envelope{Type: MsgSealData, From: Coordinator, To: env.From,
				Status: "miss"}
		}
		return &Envelope{Type: MsgSealData, From: Coordinator, To: env.From,
			Ordinal: int32(ord), Digest: digest, Val: val}
	case MsgStateGet:
		val, ok := co.shards.GetOrLease(derive.KeyFor(env.Image, env.Config))
		if !ok {
			co.cl.c.stateMiss.Add(co.l, 1)
			return &Envelope{Type: MsgStateData, From: Coordinator, To: env.From,
				Status: "lease"}
		}
		co.cl.c.stateHits.Add(co.l, 1)
		return &Envelope{Type: MsgStateData, From: Coordinator, To: env.From, Val: val}
	case MsgStatePut:
		co.shards.Put(derive.KeyFor(env.Image, env.Config), env.Val)
		return &Envelope{Type: MsgStateAck, From: Coordinator, To: env.From}
	case MsgDown:
		co.mu.Lock()
		if n, ok := co.nodes[env.From]; ok {
			n.down = true
		}
		co.cond.Broadcast()
		co.mu.Unlock()
		return &Envelope{Type: MsgDownAck, From: Coordinator, To: env.From}
	default:
		return &Envelope{Type: MsgErr, From: Coordinator, To: env.From,
			Status: "unexpected " + env.Type.String()}
	}
}
