package farm

import (
	"encoding/json"
	"reflect"
	"testing"
)

func sampleEnvelopes() []*Envelope {
	return []*Envelope{
		{Type: MsgRegister, From: 3, To: Coordinator, Slots: 2,
			Pinned: []uint64{0xABC000, 0xABC001}},
		{Type: MsgAssign, From: Coordinator, To: 1, Seq: 7, Idem: 0xDEAD,
			Job: 42, Attempt: 1, Image: 0xABC000, Config: 0xC0F,
			Wall: 123456789, Doom: true},
		{Type: MsgResult, From: 1, To: Coordinator, Job: 42, Attempt: 1,
			Status: "ok", Digest: 0xFEEDFACE, Ordinal: 3},
		{Type: MsgSealPut, From: 2, To: Coordinator, Job: 7,
			Image: 1, Config: 2, Ordinal: 4, Digest: 99},
		{Type: MsgSealData, From: Coordinator, To: 2, Status: "miss"},
		{Type: MsgErr, From: Coordinator, To: 9, Status: "unexpected down-ack"},
		{Type: MsgAssign, From: Coordinator, To: 2, Seq: 9, Idem: 0xBEEF,
			Job: 42, Image: 0xABC000, Config: 0xC0F, Rebuild: true},
		{Type: MsgResult, From: 2, To: Coordinator, Job: 42, Status: "ok",
			Source: 0x50BCE, Config: 0xC0F, Ring: 0x1234, Digest: 0xFEEDFACE,
			Sig: []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}},
		{Type: MsgCosign, From: Coordinator, To: 3, Job: 2, Digest: 0xB10C4A54},
		{Type: MsgCosignAck, From: 3, To: Coordinator, Job: 2,
			Sig: []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}},
		{Type: MsgCosignAck, From: 4, To: Coordinator, Job: 2, Status: "withheld"},
	}
}

// TestEnvelopeRoundTrip covers both codecs on every message shape.
func TestEnvelopeRoundTrip(t *testing.T) {
	for _, e := range sampleEnvelopes() {
		got, err := DecodeEnvelope(e.MarshalBinary())
		if err != nil {
			t.Fatalf("%s: %v", e.Type, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("%s: binary round trip\n got %+v\nwant %+v", e.Type, got, e)
		}
		js, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var back Envelope
		if err := json.Unmarshal(js, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&back, e) {
			t.Fatalf("%s: json round trip\n got %+v\nwant %+v", e.Type, &back, e)
		}
	}
}

// TestDecodeRejectsTruncation: every strict prefix of a valid encoding must
// error, never panic or mis-decode.
func TestDecodeRejectsTruncation(t *testing.T) {
	for _, e := range sampleEnvelopes() {
		buf := e.MarshalBinary()
		for n := 0; n < len(buf); n++ {
			if _, err := DecodeEnvelope(buf[:n]); err == nil {
				t.Fatalf("%s: decode accepted %d of %d bytes", e.Type, n, len(buf))
			}
		}
	}
}

// FuzzEnvelopeDecode: arbitrary bytes either fail cleanly or decode to an
// envelope whose re-encoding decodes identically (canonical form fixpoint).
func FuzzEnvelopeDecode(f *testing.F) {
	for _, e := range sampleEnvelopes() {
		f.Add(e.MarshalBinary())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		back, err := DecodeEnvelope(e.MarshalBinary())
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if !reflect.DeepEqual(back, e) {
			t.Fatalf("canonical fixpoint violated\n got %+v\nwant %+v", back, e)
		}
	})
}

// TestIdemKeyStability: the idempotency key ignores Seq (a retransmission
// must dedup) but tracks semantic identity.
func TestIdemKeyStability(t *testing.T) {
	a := &Envelope{Type: MsgAssign, From: Coordinator, To: 1, Seq: 1, Job: 9, Image: 2}
	b := &Envelope{Type: MsgAssign, From: Coordinator, To: 1, Seq: 2, Job: 9, Image: 2}
	if a.IdemKey() != b.IdemKey() {
		t.Fatal("retransmission changed the idempotency key")
	}
	c := &Envelope{Type: MsgAssign, From: Coordinator, To: 1, Seq: 1, Job: 9, Image: 2, Attempt: 1}
	if a.IdemKey() == c.IdemKey() {
		t.Fatal("a new attempt must carry a new idempotency key")
	}
}
