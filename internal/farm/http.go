package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// This file is the net/http+JSON binding of the protocol — the deployment
// skeleton for a farm whose nodes are real processes. Envelopes travel as
// JSON request/response bodies on POST; prepared-state and seal bodies never
// ride along (Envelope.Val is excluded from both codecs): a remote node
// materialises them from its shard of the content-addressed cache by the
// content address the envelope carries. The in-process transport remains
// the deterministic reference — the equivalence tests run both bindings
// against the same toy executor and require identical reports.

// NewHTTPHandler serves a node's Receiver at any path: POST one JSON
// envelope, receive the JSON response envelope.
func NewHTTPHandler(r Receiver) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "farm: POST only", http.StatusMethodNotAllowed)
			return
		}
		var env Envelope
		if err := json.NewDecoder(req.Body).Decode(&env); err != nil {
			http.Error(w, "farm: bad envelope: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp := r.Receive(&env)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

// HTTPTransport sends envelopes as JSON POSTs to per-node base URLs. Safe
// for concurrent use; URLs are fixed at construction (a node that is not
// mapped yields ErrUnknownNode, matching the in-process transport).
type HTTPTransport struct {
	mu     sync.Mutex
	urls   map[NodeID]string
	client *http.Client
}

// NewHTTPTransport builds a transport over the given node->URL map.
func NewHTTPTransport(urls map[NodeID]string) *HTTPTransport {
	m := make(map[NodeID]string, len(urls))
	for id, u := range urls {
		m[id] = u
	}
	return &HTTPTransport{urls: m, client: &http.Client{}}
}

// Send implements Transport.
func (t *HTTPTransport) Send(env *Envelope) (*Envelope, error) {
	t.mu.Lock()
	url, ok := t.urls[env.To]
	t.mu.Unlock()
	if !ok {
		return nil, ErrUnknownNode
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	hr, err := t.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("farm: %s -> node %d: %s", env.Type, env.To, hr.Status)
	}
	var resp Envelope
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
