package farm

import (
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestHTTPBindingMatchesInProcess runs the same job set through the
// in-process transport and the net/http+JSON binding (one httptest server
// per node) and requires identical reports. The toy executor here avoids
// seal bodies: over a real wire Envelope.Val does not travel — bodies are
// fetched from the content-addressed cache by address — and this binding
// test exercises the control plane only.
func TestHTTPBindingMatchesInProcess(t *testing.T) {
	exec := func(ctx *ExecCtx) (uint64, error) {
		return ctx.Job.ID*31 + ctx.Job.Image, nil
	}
	jobs := toyJobs(8)

	ref := New(Config{Nodes: 3, Slots: 1, PlacementSeed: 4}, exec)
	want, err := ref.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	cl := New(Config{Nodes: 3, Slots: 1, PlacementSeed: 4}, exec)
	urls := make(map[NodeID]string)
	for id, r := range cl.Receivers() {
		srv := httptest.NewServer(NewHTTPHandler(r))
		defer srv.Close()
		urls[id] = srv.URL
	}
	cl.UseTransport(NewHTTPTransport(urls))
	got, err := cl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP binding diverges from in-process transport\n got %+v\nwant %+v", got, want)
	}
}
