package farm

import (
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/reprotest"
)

// Receiver handles one protocol request and returns the response envelope.
// Handlers must be idempotent for redelivered requests (same Idem key): the
// transport is at-least-once, so exactly-once effect comes from receiver-side
// dedup, never from delivery guarantees.
type Receiver interface {
	Receive(*Envelope) *Envelope
}

// Transport delivers one request envelope to its destination node and
// returns the response. The farm is strict request/response: there is no
// one-way send, so the transport never buffers and the in-process
// implementation is a direct call.
type Transport interface {
	Send(*Envelope) (*Envelope, error)
}

// ErrUnknownNode is returned by a transport for a destination that was never
// wired into the farm.
var ErrUnknownNode = errors.New("farm: unknown destination node")

// memTransport is the in-process transport: direct dispatch to the
// destination's Receive. Deterministic by construction — no queues, no
// timeouts, no reordering.
type memTransport struct {
	mu    sync.Mutex
	nodes map[NodeID]Receiver
}

func newMemTransport() *memTransport {
	return &memTransport{nodes: make(map[NodeID]Receiver)}
}

func (t *memTransport) attach(id NodeID, r Receiver) {
	t.mu.Lock()
	t.nodes[id] = r
	t.mu.Unlock()
}

func (t *memTransport) Send(env *Envelope) (*Envelope, error) {
	t.mu.Lock()
	r := t.nodes[env.To]
	t.mu.Unlock()
	if r == nil {
		return nil, ErrUnknownNode
	}
	return r.Receive(env), nil
}

// linkKey identifies one directed link; per-link ordinal clocks make fault
// schedules independent of cross-link interleaving.
type linkKey struct {
	from, to NodeID
}

// transportCounters is the transport's slice of the farm registry.
type transportCounters struct {
	sent    *obs.Counter
	lost    *obs.Counter
	retrans *obs.Counter
	duped   *obs.Counter
}

// faultTransport decorates any Transport with the X15 fault plane's message
// events: it stamps each envelope with its per-link ordinal (Seq), and fires
// the plan's loss and duplication events when an ordinal matches.
//
// Loss is modelled as lose-then-retransmit: the doomed transmission is
// counted lost, and the at-least-once layer immediately resends the same
// envelope (same Idem, fresh Seq). Duplication delivers the request twice;
// the receiver's Idem cache absorbs the second copy. Both event kinds key on
// the link ordinals of MsgAssign carriers on coordinator->worker links: on a
// real wire every message is at risk, but assigns are the only traffic that
// is not idempotent by construction, so they are where dedup is load-bearing
// and where the property tests aim the schedule.
type faultTransport struct {
	inner Transport
	plan  reprotest.FaultPlan
	c     transportCounters
	l     obs.Local

	mu  sync.Mutex
	seq map[linkKey]uint64
}

func newFaultTransport(inner Transport, plan reprotest.FaultPlan, c transportCounters) *faultTransport {
	return &faultTransport{inner: inner, plan: plan, c: c, l: obs.NewLocal(), seq: make(map[linkKey]uint64)}
}

func (t *faultTransport) next(env *Envelope) uint64 {
	k := linkKey{env.From, env.To}
	t.mu.Lock()
	t.seq[k]++
	s := t.seq[k]
	t.mu.Unlock()
	return s
}

// fires reports whether a scheduled event ordinal hits this envelope: only
// MsgAssign carriers on coordinator->worker links are at risk (see type doc).
func (t *faultTransport) fires(at int64, env *Envelope) bool {
	return at > 0 && env.Type == MsgAssign && env.From == Coordinator &&
		env.Seq == uint64(at)
}

func (t *faultTransport) Send(env *Envelope) (*Envelope, error) {
	env.Seq = t.next(env)
	if env.Idem == 0 {
		env.Idem = env.IdemKey()
	}
	t.c.sent.Add(t.l, 1)
	if t.fires(t.plan.LoseMsg, env) {
		// The transmission is lost in flight; at-least-once delivery
		// retransmits the identical envelope on the next link ordinal.
		t.c.lost.Add(t.l, 1)
		t.c.retrans.Add(t.l, 1)
		env.Seq = t.next(env)
		t.c.sent.Add(t.l, 1)
	}
	resp, err := t.inner.Send(env)
	if err != nil {
		return nil, err
	}
	if t.fires(t.plan.DupMsg, env) {
		// The network delivers the request a second time; the receiver's
		// idempotency cache must absorb it. The duplicate's response is
		// discarded, as a real wire would drop the late reply.
		t.c.duped.Add(t.l, 1)
		if dup, err := t.inner.Send(env); err == nil {
			_ = dup
		}
	}
	return resp, nil
}
