package farm

import (
	"reflect"
	"testing"

	"repro/internal/derive"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// toyExec is a pure executor: its digest depends only on the job's declared
// inputs, never on the node, attempt or schedule — the contract a DetTrace
// build satisfies. It seals three checkpoints per run; a doomed run crashes
// after sealing, so the retry can restore from the freshest seal.
func toyExec(ctx *ExecCtx) (uint64, error) {
	key := derive.KeyFor(ctx.Job.Image, ctx.Job.Config)
	// Prepared state: build once farm-wide, reuse everywhere.
	ctx.Prepared(key, func() any { return ctx.Job.Image * 3 })
	start := 0
	if ctx.Attempt > 0 {
		if ord := ctx.LatestSeal(key); ord > 0 {
			if _, ok := ctx.Seal(key, ord); ok {
				ctx.RestoredFrom = ord
				start = ord
			}
		}
	}
	for ord := start + 1; ord <= 3; ord++ {
		ctx.PutSeal(key, ord, obs.DigestU64(ctx.Job.ID, uint64(ord)), ord)
	}
	if ctx.Doom.Crashes() {
		return 0, &Crash{Wall: 1000 * ctx.Doom.CrashAtAction}
	}
	return obs.DigestU64(ctx.Job.ID, ctx.Job.Image, ctx.Job.Config), nil
}

func toyJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		img := uint64(0xABC000 + i%3) // three distinct "images"
		jobs[i] = Job{ID: uint64(i + 1), Affinity: img, Image: img,
			Config: 0xC0F + uint64(i%2)}
	}
	return jobs
}

func digests(t *testing.T, reports []JobReport) []uint64 {
	t.Helper()
	out := make([]uint64, len(reports))
	for i, r := range reports {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", r.Job, r.Err)
		}
		out[i] = r.Digest
	}
	return out
}

// TestOutputIndependentOfFarmShape is the oracle: digests must be identical
// across node counts {1,3,8} x two placement seeds x {no faults,
// crash-and-recover, message duplication, message loss}.
func TestOutputIndependentOfFarmShape(t *testing.T) {
	jobs := toyJobs(12)
	plans := map[string]reprotest.FaultPlan{
		"none":  {},
		"crash": {KillNode: 2, KillAtJob: 1, CrashAtAction: 50},
		"dup":   {DupMsg: 2},
		"lose":  {LoseMsg: 1},
	}
	var want []uint64
	for _, nodes := range []int{1, 3, 8} {
		for _, seed := range []uint64{1, 2} {
			for name, plan := range plans {
				cl := New(Config{Nodes: nodes, Slots: 1, PlacementSeed: seed, Plan: plan}, toyExec)
				reports, err := cl.Run(jobs)
				if err != nil {
					t.Fatalf("nodes=%d seed=%d plan=%s: %v", nodes, seed, name, err)
				}
				if len(reports) != len(jobs) {
					t.Fatalf("nodes=%d seed=%d plan=%s: %d reports, want %d",
						nodes, seed, name, len(reports), len(jobs))
				}
				got := digests(t, reports)
				if want == nil {
					want = got
				} else if !reflect.DeepEqual(got, want) {
					t.Fatalf("nodes=%d seed=%d plan=%s: digests diverge\n got %x\nwant %x",
						nodes, seed, name, got, want)
				}
			}
		}
	}
}

// TestCrashRecoversOnAnotherNode pins the recovery story: the killed
// worker's job completes on a different node, restored from the freshest
// seal, and the remainder of its queue is stolen.
func TestCrashRecoversOnAnotherNode(t *testing.T) {
	jobs := toyJobs(12)
	// Kill the node job 1 lands on, so the crash is guaranteed to fire.
	kill := Place(1, jobs[0].Affinity, []int{1, 2, 3})
	plan := reprotest.FaultPlan{KillNode: kill, KillAtJob: 1, CrashAtAction: 50}
	cl := New(Config{Nodes: 3, Slots: 1, PlacementSeed: 1, Plan: plan}, toyExec)
	reports, err := cl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var recovered *JobReport
	for i := range reports {
		if reports[i].Recovered {
			recovered = &reports[i]
		}
	}
	if recovered == nil {
		t.Fatal("no job recovered from the node crash")
	}
	if recovered.Node == kill {
		t.Fatalf("job %d recovered on the dead node", recovered.Job)
	}
	if recovered.StolenFrom != kill {
		t.Fatalf("recovered job stolen from node %d, want %d", recovered.StolenFrom, kill)
	}
	if recovered.SealOrd != 3 {
		t.Fatalf("recovered from seal ordinal %d, want freshest (3)", recovered.SealOrd)
	}
	if recovered.Attempts != 2 {
		t.Fatalf("recovered job took %d attempts, want 2", recovered.Attempts)
	}
	st := cl.Stats()
	if st.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", st.NodeCrashes)
	}
	if st.Steals == 0 || st.Recoveries != 1 {
		t.Fatalf("Steals = %d (want > 0), Recoveries = %d (want 1)", st.Steals, st.Recoveries)
	}
	// Ring carries the mechanism story: at least one steal and one recover.
	var steal, recover bool
	for _, ev := range cl.Ring().Events() {
		switch ev.Kind {
		case obs.KindFarmSteal:
			steal = true
		case obs.KindFarmRecover:
			recover = true
		}
	}
	if !steal || !recover {
		t.Fatalf("ring missing events: steal=%v recover=%v", steal, recover)
	}
}

// TestKillLastNode drives every worker into the ground: the coordinator must
// finish the tail inline (local fallback) rather than deadlock.
func TestKillLastNode(t *testing.T) {
	plan := reprotest.FaultPlan{KillNode: 1, KillAtJob: 2, CrashAtAction: 50}
	cl := New(Config{Nodes: 1, Slots: 1, Plan: plan}, toyExec)
	jobs := toyJobs(6)
	reports, err := cl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(jobs) {
		t.Fatalf("%d reports, want %d", len(reports), len(jobs))
	}
	ref := New(Config{Nodes: 3, Slots: 1}, toyExec)
	refReports, _ := ref.Run(jobs)
	if !reflect.DeepEqual(digests(t, reports), digests(t, refReports)) {
		t.Fatal("fallback digests diverge from fault-free farm")
	}
	if cl.Stats().LocalFallbacks == 0 {
		t.Fatal("expected local fallbacks after the only worker died")
	}
}

// TestMessageFaultAccounting checks the loss and duplication planes leave
// their deterministic traces: lost transmissions are retransmitted,
// duplicated deliveries are deduped, and output is unaffected (covered by
// the shape test).
func TestMessageFaultAccounting(t *testing.T) {
	cl := New(Config{Nodes: 3, Slots: 1, Plan: reprotest.FaultPlan{DupMsg: 1}}, toyExec)
	if _, err := cl.Run(toyJobs(9)); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.MsgsDuplicated == 0 {
		t.Fatal("DupMsg plan produced no duplicated deliveries")
	}
	if st.MsgsDeduped != st.MsgsDuplicated {
		t.Fatalf("deduped %d of %d duplicated deliveries", st.MsgsDeduped, st.MsgsDuplicated)
	}

	cl = New(Config{Nodes: 3, Slots: 1, Plan: reprotest.FaultPlan{LoseMsg: 1}}, toyExec)
	if _, err := cl.Run(toyJobs(9)); err != nil {
		t.Fatal(err)
	}
	st = cl.Stats()
	if st.MsgsLost == 0 || st.MsgsRetransmitted != st.MsgsLost {
		t.Fatalf("lost %d, retransmitted %d", st.MsgsLost, st.MsgsRetransmitted)
	}
}

// TestPlacementPinsAndPurity: Place is pure and stable, and a pinned image
// overrides rendezvous order.
func TestPlacementPinsAndPurity(t *testing.T) {
	live := []int{1, 2, 3, 4, 5}
	for seed := uint64(0); seed < 8; seed++ {
		a := Place(seed, 0xFEED, live)
		b := Place(seed, 0xFEED, live)
		if a != b || a < 1 || a > 5 {
			t.Fatalf("seed %d: Place unstable or out of range: %d vs %d", seed, a, b)
		}
	}
	// Pin the job's image on a node Place would not pick.
	img := uint64(0xABC001)
	plain := Place(7, img, []int{1, 2, 3})
	pinOn := plain%3 + 1 // some other node
	cl := New(Config{Nodes: 3, Slots: 1, PlacementSeed: 7}, toyExec)
	cl.ws[pinOn-1].Pins = []uint64{img}
	reports, err := cl.Run([]Job{{ID: 1, Affinity: img, Image: img, Config: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Node != pinOn {
		t.Fatalf("pinned job ran on node %d, want pinned node %d", reports[0].Node, pinOn)
	}
}

// TestStatsDeterministic: counter totals are identical across repeated runs
// of the same shape (single-slot), interleaving notwithstanding.
func TestStatsDeterministic(t *testing.T) {
	run := func() Stats {
		cl := New(Config{Nodes: 3, Slots: 1, PlacementSeed: 5,
			Plan: reprotest.FaultPlan{KillNode: 2, KillAtJob: 1, CrashAtAction: 9}}, toyExec)
		if _, err := cl.Run(toyJobs(10)); err != nil {
			t.Fatal(err)
		}
		return cl.Stats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stats diverge across identical runs:\n%+v\n%+v", a, b)
	}
}
