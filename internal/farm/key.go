// Package farm is the distributed build-farm service: a coordinator and
// worker nodes speaking a message-typed request/response protocol (proto.go)
// over a pluggable transport — an in-process deterministic transport for
// tests and simulation (transport.go), and a net/http+JSON binding for real
// deployment (http.go).
//
// The design premise is the paper's §3 purity argument at fleet scale: a
// DetTrace build is a pure function of its declared inputs, so the farm
// layer — placement, capacity, retries, message loss and duplication, node
// crashes, checkpoint recovery — must contribute nothing to any output byte.
// Determinism is the distributed-systems correctness oracle: the farm's
// output must be bitwise-independent of node count, placement seed and
// failure schedule, and internal/buildsim's farm equivalence tests gate
// exactly that.
//
// Prepared state — baseline kernel snapshots, container templates (DESIGN
// §4b) and checkpoint seals (DESIGN §4d) — lives in a content-addressed,
// sharded cache (shards.go) keyed on (image content hash, config hash), so
// any node can fork any prepared state instead of cold-booting, and a
// crashed worker's job can be recovered on another node from the freshest
// valid seal.
package farm

import "repro/internal/obs"

// StateKey is the content address of one piece of prepared state: the image
// content hash and the behaviour-relevant config hash. It is THE cache-key
// semantics of the whole system — the buildsim snapshot, template and seal
// caches and the farm shard map all derive their keys through KeyFor, so the
// four caches cannot drift in what "the same prepared state" means.
//
// The Config slot is zero for baseline kernel snapshots: a prepared
// kernel.Snapshot depends only on the image (the per-run BootConfig carries
// everything else), while a core.Template additionally bakes in the
// container policy, so its slot carries core.ConfigHash.
type StateKey struct {
	Image  uint64
	Config uint64
}

// KeyFor derives the canonical cache key for prepared state built from an
// image with the given content hash under the given config hash (zero for
// config-free state like baseline kernel snapshots).
func KeyFor(imageHash, configHash uint64) StateKey {
	return StateKey{Image: imageHash, Config: configHash}
}

// Hash folds the key into one 64-bit content address, used for sharding and
// for the wire protocol's idempotency keys.
func (k StateKey) Hash() uint64 {
	return obs.DigestU64(0, k.Image, k.Config)
}

// Shard maps the key onto one of n cache shards.
func (k StateKey) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.Hash() % uint64(n))
}

// SealKey addresses one checkpoint seal in the content-addressed cache: the
// prepared-state key the seal belongs to, the farm job that sealed it, and
// the seal's 1-based ordinal within that job's run.
type SealKey struct {
	State   StateKey
	Job     uint64
	Ordinal int
}
