package farm

import (
	"sync"

	"repro/internal/derive"
)

// Shards is the content-addressed, sharded store of prepared state: baseline
// kernel snapshots and container templates keyed by derive.Key, checkpoint
// seals keyed by derive.SealKey. It lives at the coordinator — the one node the
// fault plane never kills — so a worker's death cannot take seals down with
// it, and any surviving node can fork any prepared state by content address.
//
// Prepared-state population is exactly-once via leases: the first requester
// of a missing key is told to build it (Status "lease" on the wire), and
// concurrent requesters for the same key block until the leaseholder's put
// lands. Builds of prepared state never crash (only container runs carry
// fault plans), so a lease is always eventually filled.
type Shards struct {
	n      int
	shards []shard
}

// Shards is the cluster-scale derive.Store: the same lease/seal semantics
// buildsim's in-process store serves locally, so incremental rebuilds reuse
// seals identically whether the source is this node or the coordinator.
var _ derive.Store = (*Shards)(nil)

type shard struct {
	mu     sync.Mutex
	state  map[derive.Key]*stateEntry
	seals  map[derive.SealKey]sealEntry
	latest map[latestKey]int
}

type stateEntry struct {
	ready chan struct{} // closed once val is set
	val   any
}

type sealEntry struct {
	val    any
	digest uint64
}

// latestKey tracks the freshest seal ordinal per (state, job).
type latestKey struct {
	state derive.Key
	job   uint64
}

// NewShards builds a store with n shards (minimum 1).
func NewShards(n int) *Shards {
	if n < 1 {
		n = 1
	}
	s := &Shards{n: n, shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i] = shard{
			state:  make(map[derive.Key]*stateEntry),
			seals:  make(map[derive.SealKey]sealEntry),
			latest: make(map[latestKey]int),
		}
	}
	return s
}

func (s *Shards) shard(k derive.Key) *shard { return &s.shards[k.Shard(s.n)] }

// GetOrLease returns the prepared state at k. The first caller for a missing
// key gets (nil, false): it holds the lease and must call Put. Later callers
// block until the lease is filled and return (val, true). A present key
// returns immediately.
func (s *Shards) GetOrLease(k derive.Key) (any, bool) {
	sh := s.shard(k)
	sh.mu.Lock()
	e, ok := sh.state[k]
	if !ok {
		sh.state[k] = &stateEntry{ready: make(chan struct{})}
		sh.mu.Unlock()
		return nil, false
	}
	sh.mu.Unlock()
	<-e.ready
	return e.val, true
}

// Put fills the lease at k with the built state and wakes all waiters.
func (s *Shards) Put(k derive.Key, val any) {
	sh := s.shard(k)
	sh.mu.Lock()
	e := sh.state[k]
	if e == nil {
		e = &stateEntry{ready: make(chan struct{})}
		sh.state[k] = e
	}
	sh.mu.Unlock()
	select {
	case <-e.ready:
		// Redundant put (duplicate delivery); first value wins.
	default:
		e.val = val
		close(e.ready)
	}
}

// PutSeal stores a checkpoint seal and advances the freshest-ordinal marker
// for its (state, job). Re-putting the same key is idempotent (first wins),
// which makes duplicate MsgSealPut deliveries harmless.
func (s *Shards) PutSeal(k derive.SealKey, val any, digest uint64) {
	sh := s.shard(k.State)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.seals[k]; !ok {
		sh.seals[k] = sealEntry{val: val, digest: digest}
	}
	lk := latestKey{k.State, k.Job}
	if k.Ordinal > sh.latest[lk] {
		sh.latest[lk] = k.Ordinal
	}
}

// Seal returns the seal stored at k, its digest, and whether it exists.
func (s *Shards) Seal(k derive.SealKey) (any, uint64, bool) {
	sh := s.shard(k.State)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.seals[k]
	return e.val, e.digest, ok
}

// Latest returns the freshest seal ordinal recorded for (state, job), or 0
// if the job sealed nothing.
func (s *Shards) Latest(state derive.Key, job uint64) int {
	sh := s.shard(state)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.latest[latestKey{state, job}]
}
