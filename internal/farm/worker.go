package farm

import (
	"sync"

	"repro/internal/attest"
	"repro/internal/derive"
	"repro/internal/obs"
)

// Worker is one farm node: it registers with the coordinator, advertises
// capacity (slots, pinned images), executes assigned builds, and publishes
// checkpoint seals into the coordinator's content-addressed store. Each
// worker owns its own metric registry — the per-node stripe of the farm's
// observation plane — which the coordinator absorbs (commutatively) when the
// run finishes.
type Worker struct {
	id NodeID
	cl *Cluster

	reg *obs.Registry
	l   obs.Local
	c   struct {
		msgs    *obs.Counter
		jobs    *obs.Counter
		deduped *obs.Counter
		crashes *obs.Counter
	}

	// Pins are the image content hashes this worker advertises as pinned
	// (pre-staged locally); placement prefers a pinned node for matching
	// jobs. Set before Run.
	Pins []uint64

	// signer is the worker's deterministic attestation key (nil unless the
	// cluster's attestation plane is on).
	signer *attest.Signer

	mu       sync.Mutex
	down     bool
	accepted int                  // accepted-assignment ordinal clock
	idem     map[uint64]*Envelope // idempotency cache: Idem -> first response
}

func newWorker(cl *Cluster, id NodeID) *Worker {
	w := &Worker{id: id, cl: cl}
	w.reg = obs.NewRegistry()
	w.l = obs.NewLocal()
	w.c.msgs = w.reg.Counter("farm_worker_msgs")
	w.c.jobs = w.reg.Counter("farm_worker_jobs")
	w.c.deduped = w.reg.Counter("farm_msgs_deduped")
	w.c.crashes = w.reg.Counter("farm_worker_crashes")
	w.idem = make(map[uint64]*Envelope)
	if cl.cfg.Attest {
		w.signer = attest.NewSigner(int32(id), cl.cfg.KeySeed)
	}
	return w
}

// register announces the worker to the coordinator with its capacity.
func (w *Worker) register() error {
	resp, err := w.cl.tr.Send(&Envelope{
		Type: MsgRegister, From: w.id, To: Coordinator,
		Slots: int32(w.cl.cfg.Slots), Pinned: w.Pins,
	})
	if err != nil {
		return err
	}
	_ = resp // MsgRegisterAck echoes the ordinal == w.id
	return nil
}

// Receive implements Receiver: the worker's half of the protocol. Only
// MsgAssign (builds and attestation rebuilds) and MsgCosign arrive here;
// everything else is a protocol error.
func (w *Worker) Receive(env *Envelope) *Envelope {
	w.c.msgs.Add(w.l, 1)
	if env.Type == MsgCosign {
		return w.cosign(env)
	}
	if env.Type != MsgAssign {
		return &Envelope{Type: MsgErr, From: w.id, To: env.From,
			Status: "unexpected " + env.Type.String()}
	}

	w.mu.Lock()
	if w.down {
		w.mu.Unlock()
		return &Envelope{Type: MsgResult, From: w.id, To: env.From,
			Job: env.Job, Attempt: env.Attempt, Status: "down"}
	}
	if prev, ok := w.idem[env.Idem]; ok {
		// Duplicate delivery of an assignment already executed (or in
		// flight): at-least-once transport, exactly-once effect.
		w.mu.Unlock()
		w.c.deduped.Add(w.l, 1)
		if prev == nil {
			return &Envelope{Type: MsgResult, From: w.id, To: env.From,
				Job: env.Job, Attempt: env.Attempt, Status: "inflight"}
		}
		return prev
	}
	w.idem[env.Idem] = nil // reserve: in flight
	w.accepted++
	w.mu.Unlock()

	resp := w.run(env)

	w.mu.Lock()
	w.idem[env.Idem] = resp
	w.mu.Unlock()
	return resp
}

// run executes one accepted assignment. A doomed assignment (env.Doom, set
// by the coordinator at placement time) has the plan's container-level crash
// injected into the build; when it fires the worker marks itself down and
// reports "crashed" so the coordinator can steal its queue.
func (w *Worker) run(env *Envelope) *Envelope {
	ctx := &ExecCtx{
		Node:     w.id,
		Ord:      int(w.id),
		Job:      Job{ID: env.Job, Image: env.Image, Config: env.Config},
		Attempt:  int(env.Attempt),
		PrevWall: env.Wall,
		Rebuild:  env.Rebuild,
		w:        w,
		c:        w.cl,
	}
	if env.Doom {
		ctx.Doom = w.cl.cfg.Plan
	}
	digest, err := w.cl.exec(ctx)
	if crash, ok := err.(*Crash); ok {
		w.c.crashes.Add(w.l, 1)
		w.mu.Lock()
		w.down = true
		w.mu.Unlock()
		return &Envelope{Type: MsgResult, From: w.id, To: env.From,
			Job: env.Job, Attempt: env.Attempt, Status: "crashed", Wall: crash.Wall}
	}
	if err != nil {
		return &Envelope{Type: MsgResult, From: w.id, To: env.From,
			Job: env.Job, Attempt: env.Attempt, Status: "error: " + err.Error()}
	}
	if !env.Rebuild {
		w.c.jobs.Add(w.l, 1)
	}
	resp := &Envelope{Type: MsgResult, From: w.id, To: env.From,
		Job: env.Job, Attempt: env.Attempt, Status: "ok",
		Digest: digest, Ordinal: int32(ctx.RestoredFrom)}
	if w.signer != nil {
		w.attest(env, ctx, digest, resp)
	}
	return resp
}

// attest attaches the worker's signed statement to an "ok" result or rebuild
// response — or, on Byzantine schedules that seat this ordinal, emits the
// planned misbehaviour: LieOutput signs (and claims) a per-ordinal wrong
// output, CorruptAttestation flips bits in an honest signature, and
// WithholdCosign attaches nothing at all. The lie is a VALID signature over
// wrong bits — exactly the claim-layer attack the admission quorum exists to
// out-vote and name.
func (w *Worker) attest(env *Envelope, ctx *ExecCtx, digest uint64, resp *Envelope) {
	plan := w.cl.cfg.Plan
	ord := int(w.id)
	if plan.WithholdCosign == ord {
		return
	}
	st := ctx.Attest
	st.Job = env.Job
	st.Output = digest
	if plan.LieOutput == ord {
		st.Output ^= lieMask(ord)
	}
	role := attest.RolePrimary
	if env.Rebuild {
		role = attest.RoleRebuilder
	}
	a := w.signer.Attest(st, role)
	if plan.CorruptAttestation == ord {
		a.Sig[0] ^= 0xFF
	}
	resp.Source = st.Subject.Image
	resp.Config = st.Subject.Config
	resp.Ring = st.Ring
	resp.Digest = st.Output
	resp.Sig = a.Sig
}

// cosign answers an epoch co-signing request (or withholds, on the Byzantine
// schedule that seats this worker as the withholder).
func (w *Worker) cosign(env *Envelope) *Envelope {
	resp := &Envelope{Type: MsgCosignAck, From: w.id, To: env.From, Job: env.Job}
	w.mu.Lock()
	down := w.down
	w.mu.Unlock()
	plan := w.cl.cfg.Plan
	if w.signer == nil || down || plan.WithholdCosign == int(w.id) {
		resp.Status = "withheld"
		return resp
	}
	sig := w.signer.Cosign(env.Digest)
	if plan.CorruptAttestation == int(w.id) {
		sig[0] ^= 0xFF
	}
	resp.Sig = sig
	return resp
}

// The ExecCtx accessors below route a build's prepared-state and seal
// traffic through the transport to the coordinator's store, so the executor
// is oblivious to which node it runs on.

func (c *ExecCtx) send(env *Envelope) *Envelope {
	env.From = c.Node
	env.To = Coordinator
	resp, err := c.c.tr.Send(env)
	if err != nil {
		return &Envelope{Type: MsgErr, Status: err.Error()}
	}
	return resp
}

// Prepared returns the prepared state (kernel snapshot or container
// template) at key, building it via build exactly once farm-wide: the first
// requester holds the lease and builds; concurrent requesters block until
// the put lands.
func (c *ExecCtx) Prepared(key derive.Key, build func() any) any {
	resp := c.send(&Envelope{Type: MsgStateGet, Image: key.Image, Config: key.Config})
	if resp.Status == "lease" {
		val := build()
		c.send(&Envelope{Type: MsgStatePut, Image: key.Image, Config: key.Config, Val: val})
		return val
	}
	return resp.Val
}

// PutSeal publishes a checkpoint seal for this job into the content-
// addressed store.
func (c *ExecCtx) PutSeal(key derive.Key, ordinal int, digest uint64, seal any) {
	c.send(&Envelope{Type: MsgSealPut, Job: c.Job.ID,
		Image: key.Image, Config: key.Config,
		Ordinal: int32(ordinal), Digest: digest, Val: seal})
}

// LatestSeal returns the freshest seal ordinal published for this job (0 if
// none).
func (c *ExecCtx) LatestSeal(key derive.Key) int {
	resp := c.send(&Envelope{Type: MsgSealGet, Job: c.Job.ID,
		Image: key.Image, Config: key.Config})
	if resp.Status == "miss" {
		return 0
	}
	return int(resp.Ordinal)
}

// Seal fetches the seal at the given ordinal for this job.
func (c *ExecCtx) Seal(key derive.Key, ordinal int) (any, bool) {
	resp := c.send(&Envelope{Type: MsgSealGet, Job: c.Job.ID,
		Image: key.Image, Config: key.Config, Ordinal: int32(ordinal)})
	if resp.Status == "miss" || resp.Type == MsgErr {
		return nil, false
	}
	return resp.Val, true
}
