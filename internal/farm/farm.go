// Package farm is the distributed build-farm service: a coordinator and
// worker nodes speaking a message-typed request/response protocol (proto.go)
// over a pluggable transport — an in-process deterministic transport for
// tests and simulation (transport.go), and a net/http+JSON binding for real
// deployment (http.go).
//
// The design premise is the paper's §3 purity argument at fleet scale: a
// DetTrace build is a pure function of its declared inputs, so the farm
// layer — placement, capacity, retries, message loss and duplication, node
// crashes, checkpoint recovery — must contribute nothing to any output byte.
// Determinism is the distributed-systems correctness oracle: the farm's
// output must be bitwise-independent of node count, placement seed and
// failure schedule, and internal/buildsim's farm equivalence tests gate
// exactly that.
//
// Prepared state — baseline kernel snapshots, container templates (DESIGN
// §4b) and checkpoint seals (DESIGN §4d) — lives in a content-addressed,
// sharded derivation store (shards.go) keyed by internal/derive's unified
// key schema (DESIGN §4g), so any node can fork any prepared state instead
// of cold-booting, a crashed worker's job can be recovered on another node
// from the freshest valid seal, and incremental rebuilds can reuse seals
// across the fleet.
package farm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// Job is one unit of farm work: a package build addressed by its prepared-
// state key. ID orders and identifies the job (buildsim uses the spec
// index+1); Affinity feeds placement (buildsim uses the image content hash,
// so builds of the same image gravitate to the same node and its warm
// cache). Neither value ever reaches the build's inputs.
type Job struct {
	ID       uint64
	Affinity uint64
	Image    uint64
	Config   uint64
}

// Crash is the error an executor returns when the fault plane killed its
// build mid-flight. Wall carries the virtual time of death so the next
// attempt can account recovery latency on the virtual clock.
type Crash struct {
	Wall int64
}

func (c *Crash) Error() string {
	return fmt.Sprintf("farm: node crashed mid-build at virtual t=%dns", c.Wall)
}

// ExecCtx is everything an executor may consult about WHERE and WHY it is
// running. By the farm's purity contract none of it may influence output
// bytes: Node/Ord/Attempt exist for accounting, Doom carries the fault plan
// the schedule injects into this run, PrevWall the previous attempt's time
// of death for recovery bookkeeping. The seal and prepared-state accessors
// route through the coordinator's content-addressed store over the
// transport, so any node sees the same cache.
type ExecCtx struct {
	Node    NodeID
	Ord     int
	Job     Job
	Attempt int
	// Doom is non-zero when the farm fault plan kills this node during this
	// job: the executor must inject it (CrashAtAction) into the build so the
	// checkpoint/seal machinery engages, and return *Crash when it fires.
	Doom reprotest.FaultPlan
	// PrevWall is the virtual time the previous attempt died at (0 on first
	// attempts).
	PrevWall int64
	// RestoredFrom is set by the executor: the seal ordinal a recovery
	// attempt restored from (0 = cold replay or no recovery). The worker
	// reports it back so the coordinator can stamp the recover event.
	RestoredFrom int
	// Rebuild marks an independent re-execution for the attestation quorum:
	// the executor must run the full build and fill Attest, but must not
	// publish its result as farm output (buildsim skips its Out store).
	Rebuild bool
	// Attest is filled by the executor when the attestation plane is on: the
	// statement's Subject (source Merkle root + behaviour-relevant config
	// hash) and logical Ring digest. Job and Output are stamped by the node
	// that signs.
	Attest attest.Statement

	w *Worker // nil when the coordinator executes inline (local fallback)
	c *Cluster
}

// ExecFunc runs one job attempt and returns the output digest, or *Crash if
// the injected fault plan killed it. Result bodies stay with the caller that
// provided the ExecFunc (buildsim keeps its Out slice in-process); the
// protocol carries digests and content addresses only.
type ExecFunc func(ctx *ExecCtx) (uint64, error)

// Config sizes and seeds a Cluster. The zero value is usable: 1 worker, 1
// slot, placement seed 0, no faults.
type Config struct {
	// Nodes is the worker-node count (minimum 1). The coordinator is not a
	// worker: Nodes=1 still exercises the full protocol on one worker.
	Nodes int
	// Slots is each worker's advertised capacity: concurrent builds per
	// node (minimum 1).
	Slots int
	// PlacementSeed selects the placement schedule. Different seeds spread
	// jobs differently across nodes; the farm equivalence gate proves the
	// choice never reaches an output byte.
	PlacementSeed uint64
	// Plan is the farm-level fault schedule (node crash, message loss and
	// duplication) plus the container-level crash plan injected into the
	// doomed worker's build.
	Plan reprotest.FaultPlan
	// ShardCount sizes the content-addressed store (default 8).
	ShardCount int
	// RingEvents caps the coordinator's flight-recorder ring (default 256).
	RingEvents int
	// Transport overrides the in-process transport (used by the HTTP
	// binding's tests); nil means the deterministic memTransport. The fault
	// decorator wraps whatever is supplied.
	Transport Transport

	// Attest enables the Byzantine-robust attestation chain (DESIGN §4i):
	// every completed job is independently re-executed by Rebuilders other
	// nodes, quorum-admitted with dissent naming and quarantine, and sealed
	// into an epoch-batched transparency log replicated across LogServers.
	Attest bool
	// Rebuilders is how many independent re-executions certify each job
	// beyond the primary (default 2; the coordinator tops up the pool as
	// rebuilder of last resort when the farm is smaller).
	Rebuilders int
	// LogServers is the transparency-log replica count (default 3).
	LogServers int
	// EpochSize is how many admitted records one sealed epoch batches
	// (default 4).
	EpochSize int
	// KeySeed seeds the deterministic attestation keyring: every node's
	// ed25519 key is a pure function of (ordinal, KeySeed), so any party
	// reconstructs the ring without a distribution protocol.
	KeySeed uint64
}

// JobReport is the farm's per-job accounting: which worker completed the
// job, after how many attempts, and whether it was stolen from a dead node
// and recovered from a seal. Digest is the output digest the executor
// returned — the only field that may be compared across farm shapes.
type JobReport struct {
	Job        uint64
	Node       int // worker ordinal that completed it; 0 = coordinator fallback
	Attempts   int
	StolenFrom int    // ordinal of the dead worker it was rescued from (0 = none)
	Recovered  bool   // completed by a post-crash attempt
	SealOrd    int    // seal ordinal the recovery restored from (0 = cold)
	Digest     uint64 // executor's output digest — the only compared field
	Err        string // non-empty when the executor failed outright
}

// Cluster is one farm instance: a coordinator, Nodes workers, a transport
// between them, and a content-addressed store at the coordinator. Metrics
// stripe per node — each worker owns an obs.Registry — and roll up at the
// coordinator with commutative Absorb, so totals are deterministic even
// when per-slot interleaving is not.
type Cluster struct {
	cfg  Config
	exec ExecFunc

	reg     *obs.Registry // coordinator registry; workers absorbed on Run exit
	rec     *obs.Recorder // coordinator ring: assign/steal/recover events
	recMu   sync.Mutex
	recTime int64 // farm logical clock for ring stamps

	c  farmCounters
	tr Transport // fault-decorated transport every node sends through
	co *coordinator
	ws []*Worker
	at *attestPlane // nil unless cfg.Attest
}

// farmCounters is the coordinator's slice of the farm registry.
type farmCounters struct {
	transportCounters
	deduped   *obs.Counter
	assigns   *obs.Counter
	results   *obs.Counter
	crashes   *obs.Counter
	steals    *obs.Counter
	recovers  *obs.Counter
	coldRuns  *obs.Counter
	fallbacks *obs.Counter
	sealPuts  *obs.Counter
	sealGets  *obs.Counter
	stateHits *obs.Counter
	stateMiss *obs.Counter
	nodeJobs  *obs.CounterVec

	// Attestation-plane counters (zero unless Config.Attest).
	attestations *obs.Counter
	rebuilds     *obs.Counter
	admitRetries *obs.Counter
	backoffNs    *obs.Counter
	cosigns      *obs.Counter
	withholds    *obs.Counter
	lies         *obs.Counter
	corrupts     *obs.Counter
	quarantines  *obs.Counter
	epochs       *obs.Counter
}

func newFarmCounters(reg *obs.Registry, nodes int) farmCounters {
	var c farmCounters
	c.sent = reg.Counter("farm_msgs_sent")
	c.lost = reg.Counter("farm_msgs_lost")
	c.retrans = reg.Counter("farm_msgs_retransmitted")
	c.duped = reg.Counter("farm_msgs_duplicated")
	c.deduped = reg.Counter("farm_msgs_deduped")
	c.assigns = reg.Counter("farm_assigns")
	c.results = reg.Counter("farm_results")
	c.crashes = reg.Counter("farm_node_crashes")
	c.steals = reg.Counter("farm_steals")
	c.recovers = reg.Counter("farm_recoveries")
	c.coldRuns = reg.Counter("farm_cold_recoveries")
	c.fallbacks = reg.Counter("farm_local_fallbacks")
	c.sealPuts = reg.Counter("farm_seal_puts")
	c.sealGets = reg.Counter("farm_seal_gets")
	c.stateHits = reg.Counter("farm_state_hits")
	c.stateMiss = reg.Counter("farm_state_misses")
	// Slot 0 is the coordinator's local-fallback lane; 1..nodes the workers.
	c.nodeJobs = reg.CounterVec("farm_node_jobs", nodes+1)
	c.attestations = reg.Counter("farm_attestations")
	c.rebuilds = reg.Counter("farm_attest_rebuilds")
	c.admitRetries = reg.Counter("farm_attest_retries")
	c.backoffNs = reg.Counter("farm_attest_backoff_ns")
	c.cosigns = reg.Counter("farm_epoch_cosigns")
	c.withholds = reg.Counter("farm_attest_withholds")
	c.lies = reg.Counter("farm_attest_lies")
	c.corrupts = reg.Counter("farm_attest_corrupt")
	c.quarantines = reg.Counter("farm_attest_quarantines")
	c.epochs = reg.Counter("farm_epochs_sealed")
	return c
}

// New assembles a cluster: coordinator, workers, transport, store. The
// executor runs on whichever node a job lands on.
func New(cfg Config, exec ExecFunc) *Cluster {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.ShardCount < 1 {
		cfg.ShardCount = 8
	}
	if cfg.RingEvents < 1 {
		cfg.RingEvents = 256
	}
	if cfg.Plan.KillNode > 0 && cfg.Plan.KillAtJob < 1 {
		cfg.Plan.KillAtJob = 1
	}
	if cfg.Attest {
		if cfg.Rebuilders < 1 {
			cfg.Rebuilders = 2
		}
		if cfg.LogServers < 1 {
			cfg.LogServers = 3
		}
		if cfg.EpochSize < 1 {
			cfg.EpochSize = 4
		}
	}
	cl := &Cluster{cfg: cfg, exec: exec}
	cl.reg = obs.NewRegistry()
	cl.rec = obs.NewRecorder(cfg.RingEvents)
	cl.c = newFarmCounters(cl.reg, cfg.Nodes)

	inner := cfg.Transport
	var mem *memTransport
	if inner == nil {
		mem = newMemTransport()
		inner = mem
	}
	cl.tr = newFaultTransport(inner, cfg.Plan, cl.c.transportCounters)

	cl.co = newCoordinator(cl, NewShards(cfg.ShardCount))
	if mem != nil {
		mem.attach(Coordinator, cl.co)
	}
	for i := 1; i <= cfg.Nodes; i++ {
		w := newWorker(cl, NodeID(i))
		cl.ws = append(cl.ws, w)
		if mem != nil {
			mem.attach(w.id, w)
		}
	}
	if cfg.Attest {
		cl.at = newAttestPlane(cl)
	}
	return cl
}

// record stamps one event on the coordinator ring with the farm's logical
// clock. Ring contents are mechanism-level diagnostics (WHERE work ran);
// they are never part of compared output.
func (cl *Cluster) record(kind obs.Kind, ord int, job uint64, ret int64) {
	cl.recMu.Lock()
	cl.recTime++
	cl.rec.Record(cl.recTime, kind, 0, int32(ord), job, ret)
	cl.recMu.Unlock()
}

// Run registers every worker, schedules the jobs, and blocks until all
// reports are in. Reports come back ordered by Job ID regardless of
// completion order. Worker metric stripes are absorbed into the cluster
// registry before Run returns.
func (cl *Cluster) Run(jobs []Job) ([]JobReport, error) {
	for _, w := range cl.ws {
		if err := w.register(); err != nil {
			return nil, err
		}
	}
	reports := cl.co.dispatch(jobs)
	if cl.at != nil {
		// Audit never-exercised live workers against the admitted record of
		// the first job, then seal the chain into epochs and replicate it.
		cl.at.audit(jobs)
		cl.at.sealEpochs()
	}
	for _, w := range cl.ws {
		cl.reg.Absorb(w.reg)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Job < reports[j].Job })
	return reports, nil
}

// Receivers exposes the cluster's nodes by ID, for wiring a custom
// transport: the HTTP binding's tests serve each receiver from its own
// httptest server and point an HTTPTransport at the URLs.
func (cl *Cluster) Receivers() map[NodeID]Receiver {
	m := map[NodeID]Receiver{Coordinator: cl.co}
	for _, w := range cl.ws {
		m[w.id] = w
	}
	return m
}

// UseTransport replaces the cluster's transport with tr (the fault
// decorator still wraps it). Call before Run.
func (cl *Cluster) UseTransport(tr Transport) {
	cl.tr = newFaultTransport(tr, cl.cfg.Plan, cl.c.transportCounters)
}

// Reports returns the most recent Run's per-job reports, sorted by job ID.
func (cl *Cluster) Reports() []JobReport { return cl.co.reports }

// Registry exposes the cluster's rolled-up metric registry.
func (cl *Cluster) Registry() *obs.Registry { return cl.reg }

// Ring exposes the coordinator's flight-recorder ring.
func (cl *Cluster) Ring() *obs.Recorder { return cl.rec }

// Shards exposes the coordinator's content-addressed store (tests and the
// buildsim driver seed prepared state through it).
func (cl *Cluster) Shards() *Shards { return cl.co.shards }

// Keyring exposes the attestation keyring (nil unless Config.Attest).
func (cl *Cluster) Keyring() *attest.Keyring {
	if cl.at == nil {
		return nil
	}
	return cl.at.ring
}

// Chain exposes the sealed transparency log (nil unless Config.Attest).
func (cl *Cluster) Chain() *attest.Chain {
	if cl.at == nil {
		return nil
	}
	return cl.at.chain
}

// LogServers exposes the transparency-log replicas, in ordinal order (nil
// unless Config.Attest). Replica N is the equivocating server when the fault
// plan's EquivocateEpoch == N.
func (cl *Cluster) LogServers() []*attest.Server {
	if cl.at == nil {
		return nil
	}
	return cl.at.logs
}

// AdmittedSet is the chain's admitted statements sorted by job — the value
// the attestation equivalence gates compare across fault schedules and farm
// shapes (nil unless Config.Attest).
func (cl *Cluster) AdmittedSet() []attest.Statement {
	if cl.at == nil {
		return nil
	}
	return cl.at.chain.AdmittedSet()
}

// Quarantined returns the ordinals the admission pipeline named and
// quarantined, sorted ascending.
func (cl *Cluster) Quarantined() []int {
	if cl.at == nil {
		return nil
	}
	return cl.at.quarantinedOrds()
}

// Stats is the farm's deterministic accounting, gathered from the rolled-up
// registry after Run.
type Stats struct {
	Nodes, Jobs                           int
	MsgsSent, MsgsLost, MsgsRetransmitted int64
	MsgsDuplicated, MsgsDeduped           int64
	Assigns, Results                      int64
	NodeCrashes, Steals, Recoveries       int64
	ColdRecoveries, LocalFallbacks        int64
	SealPuts, SealGets                    int64
	StateHits, StateMisses                int64

	// Attestation plane (zero unless Config.Attest).
	Attestations, Rebuilds, AdmitRetries int64
	BackoffNs                            int64
	Cosigns, CosignsWithheld             int64
	LiesDetected, CorruptAttestations    int64
	Quarantines, EpochsSealed            int64
}

// Stats reads the cluster's counters. Call after Run.
func (cl *Cluster) Stats() Stats {
	c := cl.c
	var jobs int64
	for i := 0; i < c.nodeJobs.Len(); i++ {
		jobs += c.nodeJobs.At(i)
	}
	return Stats{
		Nodes:               cl.cfg.Nodes,
		Jobs:                int(jobs),
		MsgsSent:            c.sent.Value(),
		MsgsLost:            c.lost.Value(),
		MsgsRetransmitted:   c.retrans.Value(),
		MsgsDuplicated:      c.duped.Value(),
		MsgsDeduped:         c.deduped.Value(),
		Assigns:             c.assigns.Value(),
		Results:             c.results.Value(),
		NodeCrashes:         c.crashes.Value(),
		Steals:              c.steals.Value(),
		Recoveries:          c.recovers.Value(),
		ColdRecoveries:      c.coldRuns.Value(),
		LocalFallbacks:      c.fallbacks.Value(),
		SealPuts:            c.sealPuts.Value(),
		SealGets:            c.sealGets.Value(),
		StateHits:           c.stateHits.Value(),
		StateMisses:         c.stateMiss.Value(),
		Attestations:        c.attestations.Value(),
		Rebuilds:            c.rebuilds.Value(),
		AdmitRetries:        c.admitRetries.Value(),
		BackoffNs:           c.backoffNs.Value(),
		Cosigns:             c.cosigns.Value(),
		CosignsWithheld:     c.withholds.Value(),
		LiesDetected:        c.lies.Value(),
		CorruptAttestations: c.corrupts.Value(),
		Quarantines:         c.quarantines.Value(),
		EpochsSealed:        c.epochs.Value(),
	}
}
